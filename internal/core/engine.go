// Package core implements the NCExplorer engine: the indexing pipeline
// of Fig. 3 (NLP annotation → entity linking → concept-document
// relevance scoring) and the two OLAP-style operations of §III —
// roll-up (Definition 1: top-K documents for a concept-pattern query)
// and drill-down (Definition 2: top-K subtopic suggestions ranked by
// coverage × specificity × diversity).
//
// Index layout (see internal/snapshot for the storage model):
//
//   - the corpus lives in immutable segments behind an atomically
//     swapped snapshot; documents have dense, append-only global IDs;
//   - an entity→documents inverted index per segment gives exact
//     Definition-1 matching semantics (a document matches concept c iff
//     it contains an entity in c's extent closure);
//   - per document, the candidate concepts (the direct Ψ⁻¹ concepts of
//     its entities plus a configurable number of `broader` ancestor
//     levels) are scored with cdr when a snapshot is built — these
//     postings drive drill-down coverage and act as a cdr cache;
//   - query-time cdr for concepts outside a document's candidate set is
//     computed on demand and memoised, with a per-(concept, doc) seeded
//     sampler so results are reproducible regardless of query order,
//     of which goroutine computes them, and of how the corpus was
//     grown (one monolithic build and any sequence of ingested batches
//     produce identical values at equal content).
//
// Live ingestion (Ingest) appends a new segment and swaps in a new
// snapshot generation; queries pin one generation end-to-end, so a
// roll-up running concurrently with an ingest sees either entirely the
// old corpus or entirely the new one, never a mix. See ingest.go.
package core

import (
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/nlp"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/shardmap"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/xrand"
)

// Options configures an Engine. Zero values select the paper defaults
// (τ = 2, β = 0.5, 50 samples).
type Options struct {
	// Tau, Beta, Samples parameterise the connectivity score (§III-C).
	Tau     int
	Beta    float64
	Samples int
	// Seed drives all sampling; equal seeds ⇒ identical indexes.
	Seed uint64
	// MaxConceptsPerDoc caps the candidate concepts scored per document
	// (kept by highest ontology relevance). 0 ⇒ 64.
	MaxConceptsPerDoc int
	// AncestorLevels adds this many `broader` levels above each
	// entity's direct concepts to the candidate set. 0 ⇒ 1.
	AncestorLevels int
	// Workers bounds indexing parallelism and the engine-wide budget
	// of extra helper goroutines for intra-query fan-out (drill-down's
	// diversity loop). 0 ⇒ GOMAXPROCS.
	Workers int
	// MaxSegments is the segment count above which ingested segments
	// are merged in the background. 0 ⇒ 4.
	MaxSegments int
	// Exact computes connectivity exactly instead of sampling (tests
	// and ablations).
	Exact bool
	// ReachCache bounds the reachability index's resident tables.
	ReachCache int
	// Now supplies the wall clock used to default a missing PublishedAt
	// on ingested articles (the seam tests inject to pin defaulted
	// timestamps). Never part of persisted engine metadata: the clock
	// influences only the timestamps stamped into documents, not how
	// anything is scored. nil ⇒ time.Now.
	Now func() time.Time
	// PersistWindow is the group-commit batching window: before each
	// checkpoint write the persist goroutine holds the queue open this
	// long and adopts the newest pending job, so commits arriving
	// within a window share one fsync cycle. The window only opens
	// while NO goroutine is blocked on durability and closes the moment
	// one registers (see persistLoop), so commit latency and durable-ack
	// latency are both unaffected — batching happens exactly when
	// nobody is waiting for the ack. 0 ⇒ 5ms; negative ⇒ disabled
	// (only the one-slot queue's natural coalescing remains).
	PersistWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 2
	}
	if o.Beta <= 0 {
		o.Beta = 0.5
	}
	if o.Samples <= 0 {
		o.Samples = 50
	}
	if o.MaxConceptsPerDoc <= 0 {
		o.MaxConceptsPerDoc = 64
	}
	if o.AncestorLevels <= 0 {
		o.AncestorLevels = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 4
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.PersistWindow == 0 {
		o.PersistWindow = 5 * time.Millisecond
	} else if o.PersistWindow < 0 {
		o.PersistWindow = 0
	}
	return o
}

// Query is a concept pattern: a set of KG concepts a document must all
// match (§III-A).
type Query []kg.NodeID

// ConceptContribution explains one concept's share of a document's
// relevance: the cdr value and the pivot entity that matched.
type ConceptContribution struct {
	Concept kg.NodeID
	CDR     float64
	Pivot   kg.NodeID
}

// DocResult is one roll-up result with its explanation.
type DocResult struct {
	Doc          corpus.DocID
	Score        float64
	Contributors []ConceptContribution
}

// Subtopic is one drill-down suggestion with its score components.
type Subtopic struct {
	Concept     kg.NodeID
	Score       float64
	Coverage    float64
	Specificity float64
	Diversity   float64
	MatchedDocs int
}

// IndexStats reports the outcomes and cost breakdown of the *initial*
// IndexCorpus build (the paper's Fig. 4 analysis). Ingested batches
// are tracked separately by IngestCounters.
type IndexStats struct {
	Docs      int
	PerSource map[corpus.Source]corpus.SourceStats
	// Wall-clock nanoseconds spent in the two pipeline stages, summed
	// across documents (single-threaded equivalents).
	LinkNanos  int64
	ScoreNanos int64
}

// ConceptScore is one scored candidate concept of a document at the
// current snapshot generation: the full concept-document relevance,
// its generation-independent context factor, and the pivot entity.
type ConceptScore struct {
	Concept kg.NodeID
	CDR     float64
	Pivot   kg.NodeID
	// CDRC is the context-relevance factor cdrc(c, d) (Eq. 5). It
	// depends only on the graph and the document — never on
	// corpus-global statistics — so it is reused verbatim when the
	// snapshot is rebuilt after an ingest.
	CDRC float64
}

type cdrEntry struct {
	cdr   float64
	pivot kg.NodeID
}

// cdrStreamSalt seeds the per-(concept, document) sampler streams for
// the context-relevance factor. One salt for indexing-time and
// on-demand computation: whichever path computes cdrc(c, d) first
// computes THE value.
const cdrStreamSalt = 0x9e3779b97f4a7c15

// Engine is an indexed NCExplorer instance. Safe for concurrent
// queries after IndexCorpus returns, including concurrently with
// Ingest: the query path takes no global lock — all post-index
// structures hang off an atomic snapshot pointer pinned once per
// query, memoisation goes through sharded concurrent maps with
// per-shard singleflight, and miss-path scoring borrows a
// per-goroutine scorer from a pool. Results are deterministic
// regardless of interleaving because every on-demand sample stream is
// seeded by its (concept, document) key alone.
type Engine struct {
	g       *kg.Graph
	opts    Options
	linker  *nlp.Linker
	reachIx *reach.Index

	// maxInstDeg is Δ, the maximum instance degree of the graph —
	// the walk branching bound behind the planner's cdrc ceilings.
	maxInstDeg int

	// scratch pools the per-query planner scratch (collectors, dense
	// stamp arrays) and divScratch the per-worker drill-down diversity
	// scratch; both are engine-wide because their sizes depend only on
	// the immutable graph.
	scratch sync.Pool
	divPool sync.Pool

	// st is the current generation's query state. Query entry points
	// load it exactly once and thread it through, so a query runs
	// against one consistent snapshot even while Ingest swaps in a new
	// one. Writers (IndexCorpus, Ingest, merge, ResetQueryCaches)
	// serialise on ingestMu and publish with a single Store.
	st atomic.Pointer[genState]

	// Generation-independent caches, shared by every snapshot:
	//
	//   - connMemo memoises the context-relevance factor cdrc(c, d),
	//     the expensive random-walk part of cdr. Its inputs (graph,
	//     document entities, document-local term saturation) never
	//     change once a document is ingested, so entries stay valid
	//     across generations — a snapshot rebuild re-walks nothing
	//     that was walked before;
	//   - extents memoises concept extent closures (pure graph data).
	connMemo *shardmap.Map[uint64, float64]
	extents  *relevance.ExtentCache

	// querySem admits extra helper goroutines for intra-query fan-out
	// (queryParallel). Capacity opts.Workers, engine-wide: C concurrent
	// queries run on at most C caller goroutines + Workers helpers, not
	// C × Workers, so request-level and intra-query parallelism compose
	// without oversubscribing the scheduler.
	querySem chan struct{}

	// Single-writer side: ingestMu serialises all snapshot producers;
	// mergeWG tracks the background merge goroutine; merging
	// deduplicates merge kicks; epoch tags externally visible cache
	// state (see CacheEpoch).
	ingestMu sync.Mutex
	mergeWG  sync.WaitGroup
	merging  atomic.Bool
	epoch    atomic.Uint64

	stats IndexStats
	ing   ingestCounters

	// ingestHook, when set, runs after every successful Ingest swap with
	// a DeltaView over the batch's documents (see delta.go). Guarded by
	// ingestMu like every other write-side field.
	ingestHook func(*DeltaView)

	// persist tracks durable-snapshot state: counters, the optional
	// checkpoint directory, and the segment→file name cache (see
	// persist.go). Mutable fields are guarded by ingestMu except where
	// noted (the writer-side fields move under gc.writeMu).
	persist persistState

	// gc is the group-commit checkpoint writer: commits enqueue their
	// state here and the encode+fsync happen off the commit path (see
	// groupcommit.go). syncPersist restores the legacy behavior of
	// blocking each Ingest until its checkpoint attempt completed.
	gc          groupCommit
	syncPersist atomic.Bool

	// candPool pools the per-worker candidate-concept enumeration
	// scratch (stamp marks sized by the graph); planPool pools the
	// per-worker plan-builder scratch (stamp arrays sized by the
	// document bound and block count). Both grow monotonically.
	candPool sync.Pool
	planPool sync.Pool

	// plannedEnts lists every entity occurring as a posting key in the
	// indexed segments (entSeen marks membership) — the planner's IDF
	// table iterates this instead of re-walking every segment's posting
	// map each generation. Extended for new segments only under reuse;
	// guarded by ingestMu.
	plannedEnts []kg.NodeID
	entSeen     []bool

	// Sharded serving (see shard.go): remote carries the other shards'
	// term statistics when this engine holds one shard of a federated
	// corpus (nil for a monolithic engine); localGen counts the
	// generations produced locally (initial build = 1, +1 per local
	// batch) — the published snapshot generation is localGen plus the
	// remote batch count, so every shard numbers generations exactly
	// like a monolithic engine over the union. shardIndex/shardCount
	// describe the cluster layout; they are written once at boot
	// (IndexCorpusSharded / OpenSnapshot), before serving starts.
	remote                 atomic.Pointer[ShardStats]
	localGen               atomic.Uint64
	shardIndex, shardCount int
}

// genState is everything a query needs from one snapshot generation:
// the raw snapshot, the generation-derived per-document concept
// scores, and fresh memo maps. Swapping the whole bundle atomically is
// what makes cache invalidation free: a new generation starts with
// clean memos while in-flight queries keep using — and filling — the
// generation they pinned.
type genState struct {
	e    *Engine
	snap *snapshot.Snapshot

	// concepts holds each document's kept candidate scores at this
	// generation (the cdr postings driving drill-down coverage),
	// indexed by global doc ID. Slots fill lazily on first access
	// (docConcepts): the scores are a pure projection of the plans, so
	// deriving them per queried document instead of eagerly for the
	// whole corpus keeps the ingest commit path O(batch), and every
	// reader still sees byte-identical values. States whose plans are
	// shared verbatim (merge rebuilds, cache resets) share the slot
	// array too, so warm entries survive those swaps.
	concepts []atomic.Pointer[[]ConceptScore]

	// ents maps global doc ID to the document's entity list — the same
	// slices snap.Doc returns, resolved once per generation so the
	// drill-down hot loops never pay segment resolution per lookup.
	ents [][]kg.NodeID

	// plans are the generation's pruned-query plans, indexed by
	// concept node ID: sorted matching documents (the former match
	// memo, now precomputed), their cdr scores and explanation
	// payloads, and block-max score ceilings (see plan.go). planned
	// counts the concepts with non-empty plans.
	plans   []conceptPlan
	planned int

	// entIDFN is this generation's normalised per-entity IDF table
	// (idfN(v) = IDF(v)/idfMax), retained for the lazy ceiling builder;
	// ceil guards the once-per-(concept, generation) materialisation of
	// each plan's pruning blocks (ensureCeilings). Both are shared,
	// like the plans themselves, by states that carry plans over
	// verbatim.
	entIDFN []float64
	ceil    *ceilState

	// Query-path memoisation, valid for this generation only: cdrMemo
	// caches cdr(c, d) values for non-matching pairs (the
	// delta-evaluation path probes arbitrary keys); matching pairs are
	// read straight from the plans.
	cdrMemo *shardmap.Map[uint64, cdrEntry]

	// scorers pools per-goroutine relevance scorers whose DocView is
	// this state — a borrowed scorer reads one generation's statistics
	// no matter when the engine swaps.
	scorers sync.Pool
}

// Entities implements relevance.DocView.
func (st *genState) Entities(doc int32) []kg.NodeID {
	return st.snap.Doc(doc).Entities
}

// EntityWeight implements relevance.DocView (tw(v, d), Eq. 3) over the
// snapshot's corpus-global term statistics.
func (st *genState) EntityWeight(v kg.NodeID, doc int32) float64 {
	return st.snap.Text.TFIDF(snapshot.EntTerm(v), doc)
}

// ContextWeight implements relevance.DocView: the document-local
// saturated term frequency tf/(tf+1). Deliberately free of
// corpus-global statistics so the truncated context set of (c, d) —
// and with it the memoised connectivity estimate — is identical at
// every index generation.
func (st *genState) ContextWeight(v kg.NodeID, doc int32) float64 {
	tf := st.snap.Doc(doc).EntityFreq[v]
	if tf <= 0 {
		return 0
	}
	return float64(tf) / float64(tf+1)
}

// NewEngine creates an engine over the knowledge graph.
func NewEngine(g *kg.Graph, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		g:          g,
		opts:       opts,
		linker:     nlp.NewLinker(g),
		maxInstDeg: maxInstanceDegree(g),
		connMemo:   shardmap.New[uint64, float64](cdrShards, hashCDRKey),
		extents:    relevance.NewExtentCache(matchShards),
	}
	e.scratch.New = func() any { return newQueryScratch(g.NumNodes()) }
	e.divPool.New = func() any { return &divScratch{stamp: make([]uint32, g.NumNodes())} }
	e.candPool.New = func() any { return &candScratch{stamp: make([]uint32, g.NumNodes())} }
	e.planPool.New = func() any { return &planScratch{} }
	e.gc.cond = sync.NewCond(&e.gc.mu)
	e.gc.waiterCh = make(chan struct{}, 1)
	if !opts.Exact {
		e.reachIx = reach.New(g, opts.Tau, opts.ReachCache)
	}
	e.querySem = make(chan struct{}, opts.Workers)
	return e
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Graph returns the underlying knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// state returns the current generation state (nil before IndexCorpus).
func (e *Engine) state() *genState { return e.st.Load() }

// scorerOpts builds the relevance options for this engine.
func (e *Engine) scorerOpts() relevance.Options {
	return relevance.Options{
		Tau:     e.opts.Tau,
		Beta:    e.opts.Beta,
		Samples: e.opts.Samples,
		Exact:   e.opts.Exact,
		Extents: e.extents,
	}
}

// IndexCorpus runs the full pipeline over the corpus, producing the
// base segment and the first snapshot generation. Documents must have
// dense IDs 0..n−1 (the corpus generator guarantees this). It may be
// called once per engine; grow the corpus afterwards with Ingest.
func (e *Engine) IndexCorpus(c *corpus.Corpus) IndexStats {
	if e.st.Load() != nil {
		panic("core: IndexCorpus called twice")
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	// Private copy of the display articles: the engine owns them from
	// here on (IDs are rewritten, and ingested articles extend them).
	articles := append([]corpus.Document(nil), c.Docs...)
	seg, perSource, linkNanos, err := e.buildSegment(context.Background(), articles, 0)
	if err != nil {
		panic("core: segment build failed without a cancellable context: " + err.Error())
	}
	e.stats = IndexStats{Docs: len(articles), PerSource: perSource, LinkNanos: linkNanos}
	st, scoreNanos := e.buildState(1, []*snapshot.Segment{seg}, nil)
	e.stats.ScoreNanos = scoreNanos
	e.localGen.Store(1)
	e.st.Store(st)
	e.epoch.Add(1)
	return e.stats
}

// buildSegment runs the annotation/linking pipeline (Phase A–B) over a
// batch of articles and assembles an immutable segment based at the
// given global ID. ctx cancellation aborts between documents.
func (e *Engine) buildSegment(ctx context.Context, articles []corpus.Document, base int32) (*snapshot.Segment, map[corpus.Source]corpus.SourceStats, int64, error) {
	n := len(articles)
	anns := make([]*nlp.Annotation, n)
	linkNanos := make([]int64, n)

	// Default missing publication times to the ingest wall clock — one
	// reading per batch, so a batch's defaulted documents share a
	// timestamp — and count them (surfaced as docs_defaulted_time). A
	// zero PublishedAt must never reach the index: it would land the
	// document in a 1970 bucket and poison segment time bounds.
	var defaulted int64
	var now int64
	for i := range articles {
		if articles[i].PublishedAt == 0 {
			if now == 0 {
				now = e.opts.Now().Unix()
			}
			articles[i].PublishedAt = now
			defaulted++
		}
	}
	if defaulted > 0 {
		e.ing.defaultedTime.Add(defaulted)
	}

	// Phase A — NLP annotation + entity linking (parallel; the paper's
	// dominant indexing cost). Workers stop claiming documents once ctx
	// is cancelled.
	e.parallel(n, func(i int) {
		if ctx.Err() != nil {
			return
		}
		start := time.Now()
		anns[i] = e.linker.Annotate(articles[i].Text())
		linkNanos[i] = time.Since(start).Nanoseconds()
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}

	// Phase B — per-document records (entities, raw term frequencies,
	// candidate concepts) in parallel: each document's record depends
	// only on its own annotation. The per-source mention stats and the
	// link-time total fold afterwards in document order, so the
	// aggregates are deterministic regardless of worker interleaving.
	docs := make([]snapshot.DocRecord, n)
	scratches := make([]*candScratch, e.opts.Workers)
	e.parallelWorker(n, func(worker, i int) {
		if ctx.Err() != nil {
			return
		}
		cs := scratches[worker]
		if cs == nil {
			cs = e.candPool.Get().(*candScratch)
			scratches[worker] = cs
		}
		ann := anns[i]
		ents := ann.Entities()
		docs[i] = snapshot.DocRecord{
			Source:      articles[i].Source,
			Entities:    ents,
			EntityFreq:  ann.EntityFreq,
			Candidates:  e.candidateConcepts(ents, cs),
			PublishedAt: articles[i].PublishedAt,
		}
	})
	for _, cs := range scratches {
		if cs != nil {
			e.candPool.Put(cs)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	perSource := make(map[corpus.Source]corpus.SourceStats)
	var totalLink int64
	for i := 0; i < n; i++ {
		ann := anns[i]
		ss := perSource[articles[i].Source]
		ss.Source = articles[i].Source
		ss.Articles++
		ss.TotalMentions += ann.TotalMentions()
		ss.LinkedMentions += len(ann.Mentions)
		perSource[articles[i].Source] = ss
		totalLink += linkNanos[i]
	}
	return snapshot.BuildSegment(base, docs, articles), perSource, totalLink, nil
}

// candScratch is the pooled per-worker scratch for candidateConcepts:
// stamp marks sized by the graph (reset by bumping gen, like
// queryScratch) and a reusable accumulation buffer.
type candScratch struct {
	stamp []uint32
	gen   uint32
	buf   []kg.NodeID
}

// candidateConcepts enumerates a document's candidate subtopic
// concepts: the direct Ψ⁻¹ concepts of its entities plus
// AncestorLevels of `broader` parents. Pure graph data — the set is
// the same at every generation; only the scores change. The returned
// slice is freshly allocated (it outlives the scratch inside the
// document's record); dedup marks and accumulation reuse cs.
func (e *Engine) candidateConcepts(ents []kg.NodeID, cs *candScratch) []kg.NodeID {
	cs.gen++
	if cs.gen == 0 {
		clear(cs.stamp)
		cs.gen = 1
	}
	buf := cs.buf[:0]
	add := func(c kg.NodeID) {
		if cs.stamp[c] != cs.gen {
			cs.stamp[c] = cs.gen
			buf = append(buf, c)
		}
	}
	for _, v := range ents {
		for _, c := range e.g.ConceptsOf(v) {
			add(c)
			for _, anc := range e.g.AncestorsWithin(c, e.opts.AncestorLevels) {
				add(anc)
			}
		}
	}
	cs.buf = buf
	if len(buf) == 0 {
		return nil
	}
	return snapshot.SortedCandidates(append([]kg.NodeID(nil), buf...))
}

// buildSnapshot assembles the snapshot for the engine's sharding mode:
// strictly contiguous for a monolithic engine, gap-tolerant with the
// remote term statistics folded in for a shard.
func (e *Engine) buildSnapshot(gen uint64, segs []*snapshot.Segment) *snapshot.Snapshot {
	rs := e.remote.Load()
	if rs == nil {
		return snapshot.New(gen, segs)
	}
	return snapshot.NewSharded(gen, segs, rs.textStats())
}

// localDocs lists the snapshot's local global document IDs, ascending.
// For a monolithic snapshot this is just 0..NumDocs−1; a shard's ID
// space has gaps, so dense loops over documents iterate this list.
func localDocs(snap *snapshot.Snapshot) []int32 {
	out := make([]int32, 0, snap.NumDocs())
	for _, seg := range snap.Segments {
		for i := range seg.Docs {
			out = append(out, seg.Base+int32(i))
		}
	}
	return out
}

// buildState derives a complete generation state over the given
// segments: per-document concept scores (Phase C) plus seeded memo
// maps. Expensive connectivity factors are fetched from the
// generation-independent connMemo, so only documents (or candidates)
// never scored before pay for random walks — the heart of cheap
// snapshot rebuilds after an ingest. prev, when non-nil and covering a
// segment-pointer prefix of segs, lets the planner reuse the
// generation-independent plan skeletons of untouched segments (see
// buildPlans). Returns the state and the summed per-document scoring
// nanoseconds.
func (e *Engine) buildState(gen uint64, segs []*snapshot.Segment, prev *genState) (*genState, int64) {
	st := e.newStateShell(e.buildSnapshot(gen, segs), prev)
	st.concepts = make([]atomic.Pointer[[]ConceptScore], st.snap.DocBound())

	workerScorers := make([]*relevance.Scorer, e.opts.Workers)
	for w := range workerScorers {
		workerScorers[w] = relevance.NewScorer(e.g, st, e.reachIx, e.scorerOpts())
	}
	total := e.buildPlans(st, workerScorers, prev)
	if prev == nil {
		// Seed build / snapshot open: fill the per-document score view
		// eagerly so the first queries after boot find it warm, and so
		// IndexStats reports the real scoring cost. Rebuilds after an
		// ingest skip this — the slots fill lazily on first access
		// (docConcepts), keeping the commit path O(batch).
		locals := localDocs(st.snap)
		selBufs := make([][]candSel, e.opts.Workers)
		start := time.Now()
		e.parallelWorker(len(locals), func(worker, i int) {
			d := locals[i]
			out := st.deriveDocScores(st.buildCandRefs(d), &selBufs[worker])
			st.concepts[d].Store(&out)
		})
		total += time.Since(start).Nanoseconds()
	}
	return st, total
}

// newStateShell allocates a genState with empty memos and a scorer
// pool bound to it. prev, when non-nil, donates its per-document
// entity table: the rows are generation-independent (a document's
// entity list never changes once ingested), so a rebuild over the
// same document range shares the table outright and a growing range
// copies the prefix and resolves only the new segments.
func (e *Engine) newStateShell(snap *snapshot.Snapshot, prev *genState) *genState {
	st := &genState{
		e:       e,
		snap:    snap,
		cdrMemo: shardmap.New[uint64, cdrEntry](cdrShards, hashCDRKey),
	}
	bound := snap.DocBound()
	prevBound := 0
	if prev != nil {
		prevBound = len(prev.ents)
	}
	switch {
	case prev != nil && prevBound == bound:
		st.ents = prev.ents
	default:
		st.ents = make([][]kg.NodeID, bound)
		if prev != nil && prevBound < bound {
			copy(st.ents, prev.ents)
		} else {
			prevBound = 0
		}
		for _, seg := range snap.Segments {
			if int(seg.Base)+seg.Len() <= prevBound {
				continue
			}
			for i := range seg.Docs {
				st.ents[seg.Base+int32(i)] = seg.Docs[i].Entities
			}
		}
	}
	st.scorers.New = func() any {
		return relevance.NewScorer(e.g, st, e.reachIx, e.scorerOpts())
	}
	return st
}

// planRef locates one matching candidate of a document: the concept
// and the document's row index in that concept's plan. Matching is
// doc-local and plan doc arrays are append-only along reuse chains,
// so a document's refs are computed once and reused every generation.
type planRef struct {
	c   kg.NodeID
	idx int32
}

// noPlanRefs marks "computed, no matching candidates" in the cache
// (distinguishable from a nil never-computed row).
var noPlanRefs = []planRef{}

// buildCandRefs resolves a document's candidate list against the
// current plans once. A candidate matches the document exactly when
// it appears in the concept's plan.
func (st *genState) buildCandRefs(doc int32) []planRef {
	rec := st.snap.Doc(doc)
	var refs []planRef
	for _, c := range rec.Candidates {
		if idx := st.plan(c).planIdx(doc); idx >= 0 {
			refs = append(refs, planRef{c: c, idx: int32(idx)})
		}
	}
	if refs == nil {
		return noPlanRefs
	}
	return refs
}

// docConcepts returns document d's kept candidate scores at this
// generation, deriving and caching them on first access. The derived
// slice is a pure projection of the plans, so concurrent first
// accesses compute identical values and any winner of the slot store
// is correct. Documents this snapshot does not hold locally (a
// shard's ID-space gaps) return nil, as the eager path never filled
// them.
func (st *genState) docConcepts(d int32) []ConceptScore {
	if int(d) >= len(st.concepts) {
		return nil
	}
	slot := &st.concepts[d]
	if p := slot.Load(); p != nil {
		return *p
	}
	if !st.snap.HasDoc(d) {
		return nil
	}
	var selBuf []candSel
	out := st.deriveDocScores(st.buildCandRefs(d), &selBuf)
	slot.Store(&out)
	return out
}

// candSel is the per-worker selection scratch row for deriveDocScores'
// capped path.
type candSel struct {
	c    kg.NodeID
	idx  int32
	cdro float64
}

// deriveDocScores computes one document's kept candidate scores at
// this generation from its resolved plan refs: rank by the ontology
// relevance, keep the cap, attach the precomputed context factor.
// Identical output to scoring on demand — the plan carries the same
// cdro/pivot/cdrc values the scorer would produce. The refs arrive in
// candidate (concept-ascending) order, so when the cap doesn't bite
// the kept set is already in its final deterministic order and no
// sorting happens at all; when it does, a quickselect keeps the top
// cap under the exact (cdro desc, concept asc) total order the old
// full sort used, then restores concept order — same set, same order,
// byte-identical downstream.
func (st *genState) deriveDocScores(refs []planRef, selBuf *[]candSel) []ConceptScore {
	maxKeep := st.e.opts.MaxConceptsPerDoc
	if len(refs) <= maxKeep {
		out := make([]ConceptScore, 0, len(refs))
		for _, r := range refs {
			p := &st.plans[r.c]
			if p.ont[r.idx] > 0 {
				out = append(out, ConceptScore{
					Concept: r.c, CDR: p.scores[r.idx], CDRC: p.cdrc[r.idx], Pivot: p.pivots[r.idx],
				})
			}
		}
		return out
	}
	scored := (*selBuf)[:0]
	for _, r := range refs {
		p := &st.plans[r.c]
		if cdro := p.ont[r.idx]; cdro > 0 {
			scored = append(scored, candSel{c: r.c, idx: r.idx, cdro: cdro})
		}
	}
	*selBuf = scored
	if len(scored) > maxKeep {
		selectTopSel(scored, maxKeep)
		scored = scored[:maxKeep]
		slices.SortFunc(scored, func(a, b candSel) int {
			return int(a.c) - int(b.c)
		})
	}
	out := make([]ConceptScore, 0, len(scored))
	for _, cd := range scored {
		p := &st.plans[cd.c]
		out = append(out, ConceptScore{
			Concept: cd.c, CDR: p.scores[cd.idx], CDRC: p.cdrc[cd.idx], Pivot: p.pivots[cd.idx],
		})
	}
	return out
}

// selLess is the selection order of the capped path: highest ontology
// relevance first, concept ID ascending on ties — a total order
// (concept IDs are unique per document), so the kept set is exactly
// the old full sort's prefix.
func selLess(a, b candSel) bool {
	if a.cdro != b.cdro {
		return a.cdro > b.cdro
	}
	return a.c < b.c
}

// selectTopSel partially orders s so s[:k] holds the top k under
// selLess (order within the prefix unspecified; callers re-sort).
func selectTopSel(s []candSel, k int) {
	lo, hi := 0, len(s)
	for hi-lo > 1 {
		pivot := s[(lo+hi)/2]
		i, j := lo, hi-1
		for i <= j {
			for selLess(s[i], pivot) {
				i++
			}
			for selLess(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j+1:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// contextRel returns the memoised context-relevance factor cdrc(c, d),
// computing it with the caller's scorer on a miss. The sampler is
// seeded by (concept, doc) alone, so the value is independent of query
// order, of goroutine interleaving, and of the generation that first
// computed it.
func (e *Engine) contextRel(s *relevance.Scorer, c kg.NodeID, doc int32) float64 {
	key := cdrKey(c, doc)
	v, _ := e.connMemo.GetOrCompute(key, func() float64 {
		rnd := xrand.Stream(e.opts.Seed^cdrStreamSalt, key)
		return s.ContextRel(c, doc, rnd)
	})
	return v
}

func cdrKey(c kg.NodeID, doc int32) uint64 {
	return uint64(uint32(c))<<32 | uint64(uint32(doc))
}

// parallel runs fn(i) for i in [0, n) on opts.Workers goroutines.
func (e *Engine) parallel(n int, fn func(i int)) {
	e.parallelWorker(n, func(_, i int) { fn(i) })
}

// queryParallel runs fn(i) for i in [0, n) at query time. The calling
// goroutine always works; helper goroutines join only when (a) the
// loop is big enough to amortise a spawn and (b) the engine-wide
// querySem has capacity — under saturation (many concurrent queries)
// it degrades gracefully to an inline serial loop instead of piling
// C × Workers goroutines onto the scheduler.
func (e *Engine) queryParallel(n int, fn func(i int)) {
	e.queryParallelCtx(context.Background(), n, fn)
}

// queryParallelCtx is queryParallel under a context: every worker
// (caller and helpers alike) checks ctx before claiming the next index
// and stops claiming once it is cancelled, so a cancelled query
// releases its helper budget promptly instead of draining the loop.
// Indices already claimed run to completion; the ctx error, if any, is
// returned after all workers stop.
func (e *Engine) queryParallelCtx(ctx context.Context, n int, fn func(i int)) error {
	var next atomic.Int64
	work := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	const minPerWorker = 32
	helpers := e.opts.Workers - 1
	if m := n/minPerWorker - 1; m < helpers {
		helpers = m
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		select {
		case e.querySem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-e.querySem
					wg.Done()
				}()
				work()
			}()
		default:
			// Engine already running its full helper budget.
		}
	}
	work()
	wg.Wait()
	return ctx.Err()
}

func (e *Engine) parallelWorker(n int, fn func(worker, i int)) {
	workers := e.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// Stats returns the initial indexing statistics (valid after
// IndexCorpus; ingested batches are reported by IngestCounters).
func (e *Engine) Stats() IndexStats { return e.stats }

// Generation returns the current snapshot generation: 1 after
// IndexCorpus, +1 per ingested batch (0 before indexing). Segment
// merges do not change it — they reorganise storage, not content.
func (e *Engine) Generation() uint64 {
	if st := e.state(); st != nil {
		return st.snap.Generation
	}
	return 0
}

// CacheEpoch tags the externally observable query-cache state: it
// advances on every event after which an external response cache must
// stop serving retained bodies — each snapshot swap (new content) and
// each ResetQueryCaches call. Serving layers fold it into their cache
// keys, making old entries unreachable without a stop-the-world flush.
func (e *Engine) CacheEpoch() uint64 { return e.epoch.Load() }

// Entities returns a document's distinct linked entities (current
// generation; entity lists are append-only and never change once a
// document is ingested).
func (e *Engine) Entities(doc int32) []kg.NodeID {
	return e.state().Entities(doc)
}

// EntityWeight returns tw(v, d) under the current generation's
// corpus-global term statistics.
func (e *Engine) EntityWeight(v kg.NodeID, doc int32) float64 {
	return e.state().EntityWeight(v, doc)
}

// ContextWeight returns the document-local context-ranking weight of
// an entity. Together with Entities and EntityWeight this lets an
// Engine serve as a relevance.DocView for ad-hoc scorers (the
// experiment harness builds exact-mode scorers this way); such a
// scorer reads whatever generation is current at each call, unlike
// the engine's own query path, which pins one.
func (e *Engine) ContextWeight(v kg.NodeID, doc int32) float64 {
	return e.state().ContextWeight(v, doc)
}

// DocConcepts returns a document's candidate concepts with their cdr
// scores at the current generation (the per-document postings). The
// slice must not be modified.
func (e *Engine) DocConcepts(doc corpus.DocID) []ConceptScore {
	return e.state().docConcepts(int32(doc))
}

// ResetQueryCaches restores the query-time memoisation to the current
// generation's post-build state: a fresh (empty) cdr memo for
// non-matching probes, and the connectivity memo reduced to the
// entries the plans pin. The plans and per-document scores themselves
// are generation
// state, not query caches — they are carried over, exactly as a fresh
// build of this generation would recreate them. Benchmarks use this
// to replay cold-cache traffic; results are unaffected because
// on-demand values are seeded per (concept, document) — a query in
// flight during the reset keeps its pinned state and recomputes
// identical values.
func (e *Engine) ResetQueryCaches() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	cur := e.state()
	if cur == nil {
		return
	}
	e.connMemo.Reset()
	st := e.newStateShell(cur.snap, cur)
	st.concepts = cur.concepts
	st.plans = cur.plans
	st.planned = cur.planned
	st.entIDFN = cur.entIDFN
	st.ceil = cur.ceil
	st.reseedConn()
	e.st.Store(st)
	e.epoch.Add(1)
}

// NumDocs returns the number of indexed documents at the current
// generation.
func (e *Engine) NumDocs() int { return e.state().snap.NumDocs() }

// DocSource returns the source of an indexed document.
func (e *Engine) DocSource(doc corpus.DocID) corpus.Source {
	return e.state().snap.Doc(int32(doc)).Source
}

// Doc returns the display document (title, body, source) of an
// indexed or ingested article. The returned value is immutable.
func (e *Engine) Doc(doc corpus.DocID) *corpus.Document {
	return e.state().snap.Article(int32(doc))
}
