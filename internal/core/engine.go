// Package core implements the NCExplorer engine: the indexing pipeline
// of Fig. 3 (NLP annotation → entity linking → concept-document
// relevance scoring) and the two OLAP-style operations of §III —
// roll-up (Definition 1: top-K documents for a concept-pattern query)
// and drill-down (Definition 2: top-K subtopic suggestions ranked by
// coverage × specificity × diversity).
//
// Index layout:
//
//   - an entity→documents inverted index gives exact Definition-1
//     matching semantics (a document matches concept c iff it contains
//     an entity in c's extent closure);
//   - per document, the candidate concepts (the direct Ψ⁻¹ concepts of
//     its entities plus a configurable number of `broader` ancestor
//     levels) are scored with cdr at indexing time — these postings
//     drive drill-down coverage and act as a cdr cache;
//   - query-time cdr for concepts outside a document's candidate set is
//     computed on demand and memoised, with a per-(concept, doc) seeded
//     sampler so results are reproducible regardless of query order.
package core

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/nlp"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/textindex"
	"ncexplorer/internal/xrand"
)

// Options configures an Engine. Zero values select the paper defaults
// (τ = 2, β = 0.5, 50 samples).
type Options struct {
	// Tau, Beta, Samples parameterise the connectivity score (§III-C).
	Tau     int
	Beta    float64
	Samples int
	// Seed drives all sampling; equal seeds ⇒ identical indexes.
	Seed uint64
	// MaxConceptsPerDoc caps the candidate concepts scored per document
	// (kept by highest ontology relevance). 0 ⇒ 64.
	MaxConceptsPerDoc int
	// AncestorLevels adds this many `broader` levels above each
	// entity's direct concepts to the candidate set. 0 ⇒ 1.
	AncestorLevels int
	// Workers bounds indexing parallelism. 0 ⇒ GOMAXPROCS.
	Workers int
	// Exact computes connectivity exactly instead of sampling (tests
	// and ablations).
	Exact bool
	// ReachCache bounds the reachability index's resident tables.
	ReachCache int
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 2
	}
	if o.Beta <= 0 {
		o.Beta = 0.5
	}
	if o.Samples <= 0 {
		o.Samples = 50
	}
	if o.MaxConceptsPerDoc <= 0 {
		o.MaxConceptsPerDoc = 64
	}
	if o.AncestorLevels <= 0 {
		o.AncestorLevels = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Query is a concept pattern: a set of KG concepts a document must all
// match (§III-A).
type Query []kg.NodeID

// ConceptContribution explains one concept's share of a document's
// relevance: the cdr value and the pivot entity that matched.
type ConceptContribution struct {
	Concept kg.NodeID
	CDR     float64
	Pivot   kg.NodeID
}

// DocResult is one roll-up result with its explanation.
type DocResult struct {
	Doc          corpus.DocID
	Score        float64
	Contributors []ConceptContribution
}

// Subtopic is one drill-down suggestion with its score components.
type Subtopic struct {
	Concept     kg.NodeID
	Score       float64
	Coverage    float64
	Specificity float64
	Diversity   float64
	MatchedDocs int
}

// IndexStats reports indexing outcomes and the cost breakdown measured
// for the paper's Fig. 4 analysis.
type IndexStats struct {
	Docs      int
	PerSource map[corpus.Source]corpus.SourceStats
	// Wall-clock nanoseconds spent in the two pipeline stages, summed
	// across documents (single-threaded equivalents).
	LinkNanos  int64
	ScoreNanos int64
}

// ConceptScore is one indexed candidate concept of a document with its
// concept-document relevance and pivot entity.
type ConceptScore struct {
	Concept kg.NodeID
	CDR     float64
	Pivot   kg.NodeID
}

type docInfo struct {
	source   corpus.Source
	entities []kg.NodeID // distinct linked entities, first-mention order
	concepts []ConceptScore
}

type cdrEntry struct {
	cdr   float64
	pivot kg.NodeID
}

// Engine is an indexed NCExplorer instance. Safe for concurrent
// queries after IndexCorpus returns.
type Engine struct {
	g       *kg.Graph
	opts    Options
	linker  *nlp.Linker
	reachIx *reach.Index

	entIx   *textindex.Index
	docs    []docInfo
	entDocs map[kg.NodeID][]int32

	mu          sync.Mutex
	scorer      *relevance.Scorer
	cdrCache    map[uint64]cdrEntry
	conceptDocs map[kg.NodeID][]int32

	stats IndexStats
}

// NewEngine creates an engine over the knowledge graph.
func NewEngine(g *kg.Graph, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		g:           g,
		opts:        opts,
		linker:      nlp.NewLinker(g),
		entIx:       textindex.New(),
		entDocs:     make(map[kg.NodeID][]int32),
		cdrCache:    make(map[uint64]cdrEntry),
		conceptDocs: make(map[kg.NodeID][]int32),
	}
	if !opts.Exact {
		e.reachIx = reach.New(g, opts.Tau, opts.ReachCache)
	}
	return e
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Graph returns the underlying knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// entity IDs double as terms in the entity index.
func entKey(v kg.NodeID) string { return strconv.Itoa(int(v)) }

// Entities implements relevance.DocView.
func (e *Engine) Entities(doc int32) []kg.NodeID { return e.docs[doc].entities }

// EntityWeight implements relevance.DocView (tw(v, d), Eq. 3).
func (e *Engine) EntityWeight(v kg.NodeID, doc int32) float64 {
	return e.entIx.TFIDF(entKey(v), doc)
}

// scorerOpts builds the relevance options for this engine.
func (e *Engine) scorerOpts() relevance.Options {
	return relevance.Options{
		Tau:     e.opts.Tau,
		Beta:    e.opts.Beta,
		Samples: e.opts.Samples,
		Exact:   e.opts.Exact,
	}
}

// IndexCorpus runs the full pipeline over the corpus. Documents must
// have dense IDs 0..n−1 (the corpus generator guarantees this). It may
// be called once per engine.
func (e *Engine) IndexCorpus(c *corpus.Corpus) IndexStats {
	if len(e.docs) > 0 {
		panic("core: IndexCorpus called twice")
	}
	n := c.Len()
	e.docs = make([]docInfo, n)
	anns := make([]*nlp.Annotation, n)
	linkNanos := make([]int64, n)

	// Phase A — NLP annotation + entity linking (parallel; the paper's
	// dominant indexing cost).
	e.parallel(n, func(i int) {
		d := c.Doc(corpus.DocID(i))
		start := time.Now()
		anns[i] = e.linker.Annotate(d.Text())
		linkNanos[i] = time.Since(start).Nanoseconds()
	})

	// Phase B — sequential: entity term index, entity→doc postings,
	// per-source mention statistics.
	e.stats.PerSource = make(map[corpus.Source]corpus.SourceStats)
	for i := 0; i < n; i++ {
		d := c.Doc(corpus.DocID(i))
		ann := anns[i]
		tf := make(map[string]int, len(ann.EntityFreq))
		for v, f := range ann.EntityFreq {
			tf[entKey(v)] = f
		}
		e.entIx.Add(int32(i), tf)
		ents := ann.Entities()
		e.docs[i] = docInfo{source: d.Source, entities: ents}
		for _, v := range ents {
			e.entDocs[v] = append(e.entDocs[v], int32(i))
		}
		ss := e.stats.PerSource[d.Source]
		ss.Source = d.Source
		ss.Articles++
		ss.TotalMentions += ann.TotalMentions()
		ss.LinkedMentions += len(ann.Mentions)
		e.stats.PerSource[d.Source] = ss
		e.stats.LinkNanos += linkNanos[i]
	}
	e.stats.Docs = n

	// Phase C — candidate concept scoring (parallel, deterministic:
	// each document's sampler is seeded by its ID).
	scoreNanos := make([]int64, n)
	workerScorers := make([]*relevance.Scorer, e.opts.Workers)
	for w := range workerScorers {
		workerScorers[w] = relevance.NewScorer(e.g, e, e.reachIx, e.scorerOpts())
	}
	e.parallelWorker(n, func(worker, i int) {
		start := time.Now()
		e.docs[i].concepts = e.scoreCandidates(workerScorers[worker], int32(i))
		scoreNanos[i] = time.Since(start).Nanoseconds()
	})
	for i := 0; i < n; i++ {
		e.stats.ScoreNanos += scoreNanos[i]
		for _, cs := range e.docs[i].concepts {
			e.cdrCache[cdrKey(cs.Concept, int32(i))] = cdrEntry{cdr: cs.CDR, pivot: cs.Pivot}
		}
	}

	// Serving-time scorer for query-path cache misses.
	e.scorer = relevance.NewScorer(e.g, e, e.reachIx, e.scorerOpts())
	return e.stats
}

// scoreCandidates selects and scores the candidate concepts of one
// document: direct Ψ⁻¹ concepts of its entities plus AncestorLevels of
// `broader` parents, capped by ontology relevance.
func (e *Engine) scoreCandidates(s *relevance.Scorer, doc int32) []ConceptScore {
	seen := make(map[kg.NodeID]struct{})
	var candidates []kg.NodeID
	add := func(c kg.NodeID) {
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			candidates = append(candidates, c)
		}
	}
	for _, v := range e.docs[doc].entities {
		for _, c := range e.g.ConceptsOf(v) {
			add(c)
			for _, anc := range e.g.AncestorsWithin(c, e.opts.AncestorLevels) {
				add(anc)
			}
		}
	}
	// Rank by cdro (cheap), keep the cap, then pay for connectivity.
	type cand struct {
		c     kg.NodeID
		cdro  float64
		pivot kg.NodeID
	}
	scored := make([]cand, 0, len(candidates))
	for _, c := range candidates {
		cdro, pivot := s.OntologyRel(c, doc)
		if cdro > 0 {
			scored = append(scored, cand{c, cdro, pivot})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].cdro != scored[j].cdro {
			return scored[i].cdro > scored[j].cdro
		}
		return scored[i].c < scored[j].c
	})
	if len(scored) > e.opts.MaxConceptsPerDoc {
		scored = scored[:e.opts.MaxConceptsPerDoc]
	}
	rnd := xrand.Stream(e.opts.Seed, uint64(doc))
	out := make([]ConceptScore, 0, len(scored))
	for _, cd := range scored {
		cdrc := s.ContextRel(cd.c, doc, rnd)
		out = append(out, ConceptScore{Concept: cd.c, CDR: cd.cdro * cdrc, Pivot: cd.pivot})
	}
	// Deterministic order for downstream iteration.
	sort.Slice(out, func(i, j int) bool { return out[i].Concept < out[j].Concept })
	return out
}

func cdrKey(c kg.NodeID, doc int32) uint64 {
	return uint64(uint32(c))<<32 | uint64(uint32(doc))
}

// parallel runs fn(i) for i in [0, n) on opts.Workers goroutines.
func (e *Engine) parallel(n int, fn func(i int)) {
	e.parallelWorker(n, func(_, i int) { fn(i) })
}

func (e *Engine) parallelWorker(n int, fn func(worker, i int)) {
	workers := e.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := take()
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// Stats returns indexing statistics (valid after IndexCorpus).
func (e *Engine) Stats() IndexStats { return e.stats }

// DocConcepts returns a document's indexed candidate concepts with
// their cdr scores (the per-document postings). The slice must not be
// modified.
func (e *Engine) DocConcepts(doc corpus.DocID) []ConceptScore {
	return e.docs[doc].concepts
}

// ResetQueryCaches discards the query-time memoisation (concept match
// lists and on-demand cdr values), restoring the cache to its
// post-indexing state. Benchmarks use it to measure cold query cost;
// results are unaffected because on-demand values are seeded per
// (concept, document).
func (e *Engine) ResetQueryCaches() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.conceptDocs = make(map[kg.NodeID][]int32)
	e.cdrCache = make(map[uint64]cdrEntry, len(e.cdrCache))
	for i := range e.docs {
		for _, cs := range e.docs[i].concepts {
			e.cdrCache[cdrKey(cs.Concept, int32(i))] = cdrEntry{cdr: cs.CDR, pivot: cs.Pivot}
		}
	}
}

// NumDocs returns the number of indexed documents.
func (e *Engine) NumDocs() int { return len(e.docs) }

// DocSource returns the source of an indexed document.
func (e *Engine) DocSource(doc corpus.DocID) corpus.Source {
	return e.docs[doc].source
}
