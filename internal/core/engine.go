// Package core implements the NCExplorer engine: the indexing pipeline
// of Fig. 3 (NLP annotation → entity linking → concept-document
// relevance scoring) and the two OLAP-style operations of §III —
// roll-up (Definition 1: top-K documents for a concept-pattern query)
// and drill-down (Definition 2: top-K subtopic suggestions ranked by
// coverage × specificity × diversity).
//
// Index layout:
//
//   - an entity→documents inverted index gives exact Definition-1
//     matching semantics (a document matches concept c iff it contains
//     an entity in c's extent closure);
//   - per document, the candidate concepts (the direct Ψ⁻¹ concepts of
//     its entities plus a configurable number of `broader` ancestor
//     levels) are scored with cdr at indexing time — these postings
//     drive drill-down coverage and act as a cdr cache;
//   - query-time cdr for concepts outside a document's candidate set is
//     computed on demand and memoised, with a per-(concept, doc) seeded
//     sampler so results are reproducible regardless of query order.
package core

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/nlp"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/shardmap"
	"ncexplorer/internal/textindex"
	"ncexplorer/internal/xrand"
)

// Options configures an Engine. Zero values select the paper defaults
// (τ = 2, β = 0.5, 50 samples).
type Options struct {
	// Tau, Beta, Samples parameterise the connectivity score (§III-C).
	Tau     int
	Beta    float64
	Samples int
	// Seed drives all sampling; equal seeds ⇒ identical indexes.
	Seed uint64
	// MaxConceptsPerDoc caps the candidate concepts scored per document
	// (kept by highest ontology relevance). 0 ⇒ 64.
	MaxConceptsPerDoc int
	// AncestorLevels adds this many `broader` levels above each
	// entity's direct concepts to the candidate set. 0 ⇒ 1.
	AncestorLevels int
	// Workers bounds indexing parallelism and the engine-wide budget
	// of extra helper goroutines for intra-query fan-out (drill-down's
	// diversity loop). 0 ⇒ GOMAXPROCS.
	Workers int
	// Exact computes connectivity exactly instead of sampling (tests
	// and ablations).
	Exact bool
	// ReachCache bounds the reachability index's resident tables.
	ReachCache int
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 2
	}
	if o.Beta <= 0 {
		o.Beta = 0.5
	}
	if o.Samples <= 0 {
		o.Samples = 50
	}
	if o.MaxConceptsPerDoc <= 0 {
		o.MaxConceptsPerDoc = 64
	}
	if o.AncestorLevels <= 0 {
		o.AncestorLevels = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Query is a concept pattern: a set of KG concepts a document must all
// match (§III-A).
type Query []kg.NodeID

// ConceptContribution explains one concept's share of a document's
// relevance: the cdr value and the pivot entity that matched.
type ConceptContribution struct {
	Concept kg.NodeID
	CDR     float64
	Pivot   kg.NodeID
}

// DocResult is one roll-up result with its explanation.
type DocResult struct {
	Doc          corpus.DocID
	Score        float64
	Contributors []ConceptContribution
}

// Subtopic is one drill-down suggestion with its score components.
type Subtopic struct {
	Concept     kg.NodeID
	Score       float64
	Coverage    float64
	Specificity float64
	Diversity   float64
	MatchedDocs int
}

// IndexStats reports indexing outcomes and the cost breakdown measured
// for the paper's Fig. 4 analysis.
type IndexStats struct {
	Docs      int
	PerSource map[corpus.Source]corpus.SourceStats
	// Wall-clock nanoseconds spent in the two pipeline stages, summed
	// across documents (single-threaded equivalents).
	LinkNanos  int64
	ScoreNanos int64
}

// ConceptScore is one indexed candidate concept of a document with its
// concept-document relevance and pivot entity.
type ConceptScore struct {
	Concept kg.NodeID
	CDR     float64
	Pivot   kg.NodeID
}

type docInfo struct {
	source   corpus.Source
	entities []kg.NodeID // distinct linked entities, first-mention order
	concepts []ConceptScore
}

type cdrEntry struct {
	cdr   float64
	pivot kg.NodeID
}

// Engine is an indexed NCExplorer instance. Safe for concurrent
// queries after IndexCorpus returns: the query path takes no global
// lock — post-index structures are immutable, memoisation goes through
// sharded concurrent maps with per-shard singleflight, and miss-path
// scoring borrows a per-goroutine scorer from a pool. Results are
// deterministic regardless of interleaving because every on-demand
// sample stream is seeded by its (concept, document) key alone.
type Engine struct {
	g       *kg.Graph
	opts    Options
	linker  *nlp.Linker
	reachIx *reach.Index

	// Immutable after IndexCorpus returns: the frozen term index, the
	// per-document entity/concept records, and the entity→documents
	// postings are never written again, so query goroutines read them
	// without synchronisation.
	entIx   *textindex.Index
	docs    []docInfo
	entDocs map[kg.NodeID][]int32

	// Concurrent query-path state (see cache.go): sharded memo maps
	// with per-shard singleflight, plus a pool of per-goroutine
	// scorers for miss-path computation. There is no global query
	// mutex.
	cdrMemo   *shardmap.Map[uint64, cdrEntry]
	matchMemo *shardmap.Map[kg.NodeID, []int32]
	scorers   sync.Pool
	// extents is shared by every scorer the engine creates (indexing
	// workers and the serving pool), so each concept's extent closure
	// is computed once engine-wide. It is deterministic index-derived
	// data, not query-time randomness, so ResetQueryCaches leaves it
	// alone — mirroring the old single-scorer engine, whose private
	// extent memo also survived resets.
	extents *relevance.ExtentCache
	// querySem admits extra helper goroutines for intra-query fan-out
	// (queryParallel). Capacity opts.Workers, engine-wide: C concurrent
	// queries run on at most C caller goroutines + Workers helpers, not
	// C × Workers, so request-level and intra-query parallelism compose
	// without oversubscribing the scheduler.
	querySem chan struct{}

	stats IndexStats
}

// NewEngine creates an engine over the knowledge graph.
func NewEngine(g *kg.Graph, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		g:         g,
		opts:      opts,
		linker:    nlp.NewLinker(g),
		entIx:     textindex.New(),
		entDocs:   make(map[kg.NodeID][]int32),
		cdrMemo:   shardmap.New[uint64, cdrEntry](cdrShards, hashCDRKey),
		matchMemo: shardmap.New[kg.NodeID, []int32](matchShards, hashConcept),
		extents:   relevance.NewExtentCache(matchShards),
	}
	if !opts.Exact {
		e.reachIx = reach.New(g, opts.Tau, opts.ReachCache)
	}
	e.scorers.New = func() any {
		return relevance.NewScorer(e.g, e, e.reachIx, e.scorerOpts())
	}
	e.querySem = make(chan struct{}, opts.Workers)
	return e
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Graph returns the underlying knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.g }

// entity IDs double as terms in the entity index.
func entKey(v kg.NodeID) string { return strconv.Itoa(int(v)) }

// Entities implements relevance.DocView.
func (e *Engine) Entities(doc int32) []kg.NodeID { return e.docs[doc].entities }

// EntityWeight implements relevance.DocView (tw(v, d), Eq. 3).
func (e *Engine) EntityWeight(v kg.NodeID, doc int32) float64 {
	return e.entIx.TFIDF(entKey(v), doc)
}

// scorerOpts builds the relevance options for this engine.
func (e *Engine) scorerOpts() relevance.Options {
	return relevance.Options{
		Tau:     e.opts.Tau,
		Beta:    e.opts.Beta,
		Samples: e.opts.Samples,
		Exact:   e.opts.Exact,
		Extents: e.extents,
	}
}

// IndexCorpus runs the full pipeline over the corpus. Documents must
// have dense IDs 0..n−1 (the corpus generator guarantees this). It may
// be called once per engine.
func (e *Engine) IndexCorpus(c *corpus.Corpus) IndexStats {
	if len(e.docs) > 0 {
		panic("core: IndexCorpus called twice")
	}
	n := c.Len()
	e.docs = make([]docInfo, n)
	anns := make([]*nlp.Annotation, n)
	linkNanos := make([]int64, n)

	// Phase A — NLP annotation + entity linking (parallel; the paper's
	// dominant indexing cost).
	e.parallel(n, func(i int) {
		d := c.Doc(corpus.DocID(i))
		start := time.Now()
		anns[i] = e.linker.Annotate(d.Text())
		linkNanos[i] = time.Since(start).Nanoseconds()
	})

	// Phase B — sequential: entity term index, entity→doc postings,
	// per-source mention statistics.
	e.stats.PerSource = make(map[corpus.Source]corpus.SourceStats)
	for i := 0; i < n; i++ {
		d := c.Doc(corpus.DocID(i))
		ann := anns[i]
		tf := make(map[string]int, len(ann.EntityFreq))
		for v, f := range ann.EntityFreq {
			tf[entKey(v)] = f
		}
		e.entIx.Add(int32(i), tf)
		ents := ann.Entities()
		e.docs[i] = docInfo{source: d.Source, entities: ents}
		for _, v := range ents {
			e.entDocs[v] = append(e.entDocs[v], int32(i))
		}
		ss := e.stats.PerSource[d.Source]
		ss.Source = d.Source
		ss.Articles++
		ss.TotalMentions += ann.TotalMentions()
		ss.LinkedMentions += len(ann.Mentions)
		e.stats.PerSource[d.Source] = ss
		e.stats.LinkNanos += linkNanos[i]
	}
	e.stats.Docs = n
	// Freeze the term index before the parallel scoring phase: postings
	// become sorted and immutable, so the scorers' TFIDF reads (here and
	// at query time) are race-free binary searches.
	e.entIx.Freeze()

	// Phase C — candidate concept scoring (parallel, deterministic:
	// each document's sampler is seeded by its ID).
	scoreNanos := make([]int64, n)
	workerScorers := make([]*relevance.Scorer, e.opts.Workers)
	for w := range workerScorers {
		workerScorers[w] = relevance.NewScorer(e.g, e, e.reachIx, e.scorerOpts())
	}
	e.parallelWorker(n, func(worker, i int) {
		start := time.Now()
		e.docs[i].concepts = e.scoreCandidates(workerScorers[worker], int32(i))
		scoreNanos[i] = time.Since(start).Nanoseconds()
	})
	for i := 0; i < n; i++ {
		e.stats.ScoreNanos += scoreNanos[i]
	}
	e.seedCDRMemo()
	return e.stats
}

// scoreCandidates selects and scores the candidate concepts of one
// document: direct Ψ⁻¹ concepts of its entities plus AncestorLevels of
// `broader` parents, capped by ontology relevance.
func (e *Engine) scoreCandidates(s *relevance.Scorer, doc int32) []ConceptScore {
	seen := make(map[kg.NodeID]struct{})
	var candidates []kg.NodeID
	add := func(c kg.NodeID) {
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			candidates = append(candidates, c)
		}
	}
	for _, v := range e.docs[doc].entities {
		for _, c := range e.g.ConceptsOf(v) {
			add(c)
			for _, anc := range e.g.AncestorsWithin(c, e.opts.AncestorLevels) {
				add(anc)
			}
		}
	}
	// Rank by cdro (cheap), keep the cap, then pay for connectivity.
	type cand struct {
		c     kg.NodeID
		cdro  float64
		pivot kg.NodeID
	}
	scored := make([]cand, 0, len(candidates))
	for _, c := range candidates {
		cdro, pivot := s.OntologyRel(c, doc)
		if cdro > 0 {
			scored = append(scored, cand{c, cdro, pivot})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].cdro != scored[j].cdro {
			return scored[i].cdro > scored[j].cdro
		}
		return scored[i].c < scored[j].c
	})
	if len(scored) > e.opts.MaxConceptsPerDoc {
		scored = scored[:e.opts.MaxConceptsPerDoc]
	}
	rnd := xrand.Stream(e.opts.Seed, uint64(doc))
	out := make([]ConceptScore, 0, len(scored))
	for _, cd := range scored {
		cdrc := s.ContextRel(cd.c, doc, rnd)
		out = append(out, ConceptScore{Concept: cd.c, CDR: cd.cdro * cdrc, Pivot: cd.pivot})
	}
	// Deterministic order for downstream iteration.
	sort.Slice(out, func(i, j int) bool { return out[i].Concept < out[j].Concept })
	return out
}

func cdrKey(c kg.NodeID, doc int32) uint64 {
	return uint64(uint32(c))<<32 | uint64(uint32(doc))
}

// parallel runs fn(i) for i in [0, n) on opts.Workers goroutines.
func (e *Engine) parallel(n int, fn func(i int)) {
	e.parallelWorker(n, func(_, i int) { fn(i) })
}

// queryParallel runs fn(i) for i in [0, n) at query time. The calling
// goroutine always works; helper goroutines join only when (a) the
// loop is big enough to amortise a spawn and (b) the engine-wide
// querySem has capacity — under saturation (many concurrent queries)
// it degrades gracefully to an inline serial loop instead of piling
// C × Workers goroutines onto the scheduler.
func (e *Engine) queryParallel(n int, fn func(i int)) {
	e.queryParallelCtx(context.Background(), n, fn)
}

// queryParallelCtx is queryParallel under a context: every worker
// (caller and helpers alike) checks ctx before claiming the next index
// and stops claiming once it is cancelled, so a cancelled query
// releases its helper budget promptly instead of draining the loop.
// Indices already claimed run to completion; the ctx error, if any, is
// returned after all workers stop.
func (e *Engine) queryParallelCtx(ctx context.Context, n int, fn func(i int)) error {
	var next atomic.Int64
	work := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	const minPerWorker = 32
	helpers := e.opts.Workers - 1
	if m := n/minPerWorker - 1; m < helpers {
		helpers = m
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		select {
		case e.querySem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-e.querySem
					wg.Done()
				}()
				work()
			}()
		default:
			// Engine already running its full helper budget.
		}
	}
	work()
	wg.Wait()
	return ctx.Err()
}

func (e *Engine) parallelWorker(n int, fn func(worker, i int)) {
	workers := e.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// Stats returns indexing statistics (valid after IndexCorpus).
func (e *Engine) Stats() IndexStats { return e.stats }

// DocConcepts returns a document's indexed candidate concepts with
// their cdr scores (the per-document postings). The slice must not be
// modified.
func (e *Engine) DocConcepts(doc corpus.DocID) []ConceptScore {
	return e.docs[doc].concepts
}

// ResetQueryCaches discards the query-time memoisation (concept match
// lists and on-demand cdr values), restoring the cache to its
// post-indexing state. Benchmarks use it to measure cold query cost;
// results are unaffected because on-demand values are seeded per
// (concept, document).
// Calling it concurrently with queries is memory-safe but not
// recommended: a query landing in the window between the clear and the
// re-seed can recompute an indexed (concept, doc) pair with the
// on-demand sampler, whose stream differs from the indexing-time one —
// that query may observe the deviating value, but the cache itself
// converges: the re-seed wins (shardmap completion stores are
// store-if-absent), so later queries read the indexing-time value.
// Benchmarks reset between measurement phases, never mid-traffic.
func (e *Engine) ResetQueryCaches() {
	e.matchMemo.Reset()
	e.cdrMemo.Reset()
	e.seedCDRMemo()
}

// NumDocs returns the number of indexed documents.
func (e *Engine) NumDocs() int { return len(e.docs) }

// DocSource returns the source of an indexed document.
func (e *Engine) DocSource(doc corpus.DocID) corpus.Source {
	return e.docs[doc].source
}
