package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
)

// TestDistributedMergeMatchesMonolithic is the router's exactness
// contract at the engine level: over two shards grown by a randomized
// ingest schedule, MergeRollUpPages and MergeDrillDown must reproduce
// the monolithic pages byte-for-byte across a K/offset/filter grid at
// every generation.
func TestDistributedMergeMatchesMonolithic(t *testing.T) {
	g, meta, c, _ := world(t)
	opts := Options{Seed: 11, Samples: 20, MaxSegments: 2}
	const nShards = 2
	shards := make([]*Engine, nShards)
	for s := range shards {
		shards[s] = NewEngine(g, opts)
		shards[s].IndexCorpusSharded(c, s, nShards)
	}
	syncShards(t, shards)
	mono := NewEngine(g, opts)
	mono.IndexCorpus(c)

	ctx := context.Background()
	fetchSets := func(q Query, tr *TimeRange) func([]kg.NodeID) ([][]kg.NodeID, error) {
		return func(short []kg.NodeID) ([][]kg.NodeID, error) {
			sets := make([][]kg.NodeID, len(short))
			for _, e := range shards {
				part, err := e.DiversityPartials(ctx, q, short, tr)
				if err != nil {
					return nil, err
				}
				for i, s := range part.Sets {
					sets[i] = append(sets[i], s...)
				}
			}
			return sets, nil
		}
	}

	// timeWindows derives the time grid from the monolithic engine's
	// current publication span: no filter, plus a mid-span window that
	// excludes documents on both ends.
	timeWindows := func() []*TimeRange {
		st := mono.state()
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for d := int32(0); d < int32(st.snap.DocBound()); d++ {
			if !st.snap.HasDoc(d) {
				continue
			}
			t := st.snap.Doc(d).PublishedAt
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
		if lo > hi {
			return []*TimeRange{nil}
		}
		quarter := (hi - lo) / 4
		return []*TimeRange{nil, {Min: lo + quarter, Max: hi - quarter}}
	}

	check := func(stage string) {
		t.Helper()
		var queries []Query
		for _, topic := range meta.Topics {
			queries = append(queries, Query{topic.Concept}, Query{topic.Concept, topic.GroupConcept})
		}
		sources := []corpus.Source{corpus.Sources[0], corpus.Sources[2]}
		windows := timeWindows()
		for _, q := range queries {
			for _, k := range []int{1, 3, 8} {
				for _, offset := range []int{0, 2, 7} {
					for _, minScore := range []float64{0, 0.05} {
						// Alternate the time window across the grid so
						// the filtered scatter path is covered without
						// doubling the test's runtime.
						tr := windows[(k+offset)%len(windows)]
						ro := RollUpOptions{K: k, Offset: offset, MinScore: minScore, Time: tr}
						if k == 8 && offset == 0 {
							ro.Sources = sources
						}
						pages := make([]RollUpPage, len(shards))
						for s, e := range shards {
							shardOpts := ro
							shardOpts.K, shardOpts.Offset = k+offset, 0
							page, err := e.RollUpPage(ctx, q, shardOpts)
							if err != nil {
								t.Fatal(err)
							}
							pages[s] = page
						}
						got, err := MergeRollUpPages(pages, k, offset)
						if err != nil {
							t.Fatal(err)
						}
						want, err := mono.RollUpPage(ctx, q, ro)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: merged roll-up diverges for %v k=%d offset=%d min=%g:\n got:  %+v\n want: %+v",
								stage, q, k, offset, minScore, got, want)
						}

						do := DrillDownOptions{K: k, Offset: offset, MinScore: minScore, Time: tr}
						if k == 8 && offset == 2 {
							do.NoSpecificity = true
						}
						if k == 3 && offset == 0 {
							do.NoDiversity = true
						}
						parts := make([]DrillDownPartial, len(shards))
						for s, e := range shards {
							part, err := e.DrillDownPartials(ctx, q, tr)
							if err != nil {
								t.Fatal(err)
							}
							parts[s] = part
						}
						gotDD, err := MergeDrillDown(g, do, parts, fetchSets(q, tr))
						if err != nil {
							t.Fatal(err)
						}
						wantDD, err := mono.DrillDownPage(ctx, q, do)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gotDD, wantDD) {
							t.Fatalf("%s: merged drill-down diverges for %v k=%d offset=%d min=%g:\n got:  %+v\n want: %+v",
								stage, q, k, offset, minScore, gotDD, wantDD)
						}
					}
				}
			}
		}
	}
	check("seed")

	targets := []int{1, 0, 0, 1}
	for i, target := range targets {
		batch := ingestBatch(t, 9500+uint64(i), 4+i)
		if _, err := shards[target].Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := mono.Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
		syncShards(t, shards)
		check("batch")
	}
	for _, e := range shards {
		e.WaitMerges()
	}
	mono.WaitMerges()
	check("after merges")
}

// TestMergeGenerationSkew pins the typed error the router's generation
// barrier retries on.
func TestMergeGenerationSkew(t *testing.T) {
	if _, err := MergeRollUpPages([]RollUpPage{{Generation: 1}, {Generation: 2}}, 5, 0); err != ErrGenerationSkew {
		t.Fatalf("roll-up skew error = %v", err)
	}
	_, err := MergeDrillDown(nil, DrillDownOptions{K: 5},
		[]DrillDownPartial{{Generation: 1}, {Generation: 2}}, nil)
	if err != ErrGenerationSkew {
		t.Fatalf("drill-down skew error = %v", err)
	}
}
