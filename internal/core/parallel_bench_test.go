package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ncexplorer/internal/kg"
)

// benchQueries enumerates a large pool of distinct single-concept
// queries (every concept in the world), so the cold-cache parallel
// benchmarks spread concurrent work across many plans the way real
// mixed traffic does.
func benchQueries(g *kg.Graph) []Query {
	var qs []Query
	g.Concepts(func(c kg.NodeID) bool {
		qs = append(qs, Query{c})
		return true
	})
	return qs
}

// runColdParallel times genuinely cold concurrent traffic. It cannot
// use b.RunParallel over a fixed query pool: auto-scaled b.N quickly
// outgrows the pool, after which the "cold" benchmark re-measures the
// warm hit path. Instead each b.N iteration is one epoch — reset the
// query caches (untimed), then drain the whole pool once through
// GOMAXPROCS goroutines — so every timed query runs against freshly
// reset memoisation. The per-query cost is reported as ns/query.
func runColdParallel(b *testing.B, e *Engine, qs []Query, run func(q Query)) {
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e.ResetQueryCaches()
		b.StartTimer()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= len(qs) {
						return
					}
					run(qs[j])
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(qs)), "ns/query")
}

// BenchmarkRollUpParallel measures roll-up throughput under concurrent
// load. The warm variant replays one query via b.RunParallel through
// the page-reusing RollUpPageInto — pure read-path concurrency, gated
// at 0 allocs/op. The cold variant times reset-and-drain epochs over
// distinct queries (see runColdParallel) through the allocating public
// API, so the full per-query cost — pruned plan scan plus page
// construction — is what is measured.
func BenchmarkRollUpParallel(b *testing.B) {
	g, meta, _, e := world(b)
	topic := meta.Topics[0]
	warmQ := Query{topic.Concept, topic.GroupConcept}

	b.Run("warm", func(b *testing.B) {
		ctx := context.Background()
		opts := RollUpOptions{K: 10}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var page RollUpPage
			for pb.Next() {
				if err := e.RollUpPageInto(ctx, warmQ, opts, &page); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("cold", func(b *testing.B) {
		runColdParallel(b, e, benchQueries(g), func(q Query) { e.RollUp(q, 10) })
	})
}

// BenchmarkDrillDownParallel is the drill-down analogue of
// BenchmarkRollUpParallel: warm replays one suggestion round under
// b.RunParallel, cold times reset-and-drain epochs over distinct
// queries.
func BenchmarkDrillDownParallel(b *testing.B) {
	g, meta, _, e := world(b)
	topic := meta.Topics[0]
	warmQ := Query{topic.Concept, topic.GroupConcept}

	b.Run("warm", func(b *testing.B) {
		e.DrillDown(warmQ, 10)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				e.DrillDown(warmQ, 10)
			}
		})
	})
	b.Run("cold", func(b *testing.B) {
		runColdParallel(b, e, benchQueries(g), func(q Query) { e.DrillDown(q, 10) })
	})
}
