package core

import (
	"ncexplorer/internal/kg"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/shardmap"
)

// Query-path caching. The engine's post-index structures (docs, entity
// postings, term index, knowledge graph) are immutable once IndexCorpus
// returns; everything mutable at query time lives in the two sharded
// memo maps below plus a pool of per-goroutine scorers, so concurrent
// queries never share unsynchronised state and never serialize behind a
// global lock.
//
//   - cdrMemo memoises on-demand cdr(c, d) values under the same
//     (concept, doc) key the indexing pass pre-seeds; per-shard
//     singleflight means N concurrent misses on one key run the scorer
//     once.
//   - matchMemo memoises the sorted matching-document list per concept
//     (Definition 1 semantics), the input to every roll-up and
//     drill-down.
//
// Determinism is unaffected by the concurrency: on-demand cdr samplers
// are seeded per (concept, doc) (see cdr in query.go), so whichever
// goroutine computes a value computes THE value.

// cdrShards/matchShards size the memo maps. cdr keys are dense (every
// query touches many (concept, doc) pairs) so they get more shards.
const (
	cdrShards   = 64
	matchShards = 16
)

// CacheStats reports the engine's query-cache effectiveness: the
// serving layer surfaces it through /statsz.
type CacheStats struct {
	// CDR is the (concept, document) relevance memo.
	CDR shardmap.Stats `json:"cdr"`
	// Match is the concept→matching-documents memo.
	Match shardmap.Stats `json:"match"`
}

// CacheStats returns a point-in-time snapshot of the query caches.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{CDR: e.cdrMemo.Stats(), Match: e.matchMemo.Stats()}
}

// getScorer takes a scorer from the pool. Scorers are not safe for
// concurrent use (walk scratch buffers, extent memo), so each query
// goroutine borrows one for the duration of a computation and returns
// it with putScorer. Extent slices obtained from a pooled scorer stay
// valid after release: the scorer treats them as immutable shared data
// (see relevance.Scorer).
func (e *Engine) getScorer() *relevance.Scorer {
	return e.scorers.Get().(*relevance.Scorer)
}

func (e *Engine) putScorer(s *relevance.Scorer) { e.scorers.Put(s) }

// seedCDRMemo (re)stores the indexing-time candidate scores into the
// cdr memo — the cache's post-indexing baseline.
func (e *Engine) seedCDRMemo() {
	for i := range e.docs {
		for _, cs := range e.docs[i].concepts {
			e.cdrMemo.Store(cdrKey(cs.Concept, int32(i)), cdrEntry{cdr: cs.CDR, pivot: cs.Pivot})
		}
	}
}

func hashCDRKey(k uint64) uint64     { return shardmap.Mix64(k) }
func hashConcept(c kg.NodeID) uint64 { return shardmap.Mix64(uint64(uint32(c))) }
