package core

import (
	"ncexplorer/internal/kg"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/shardmap"
)

// Query-path caching. Everything a query reads hangs off the pinned
// genState: the snapshot's segments (docs, entity postings, term
// index, knowledge graph) are immutable, and everything mutable at
// query time lives in sharded memo maps plus a pool of per-goroutine
// scorers, so concurrent queries never share unsynchronised state and
// never serialize behind a global lock.
//
// The maps split by lifetime:
//
//   - per generation (swapped with the snapshot, so an ingest
//     invalidates them wholesale without a flush):
//     cdrMemo memoises cdr(c, d) for NON-matching pairs only (delta
//     evaluation probes arbitrary keys); matching pairs are answered
//     straight from the generation's concept plans (plan.go), which
//     also carry the per-concept matching-document lists (Definition
//     1 semantics), precomputed at swap time rather than memoised on
//     demand;
//   - engine-wide (valid forever): connMemo holds the
//     context-relevance factor cdrc(c, d) — the random-walk part of
//     cdr, a pure function of graph + document — and the extent cache
//     holds concept extent closures (pure graph data). These are what
//     make a post-ingest snapshot rebuild cheap: only the cheap
//     ontology factor is recomputed; nothing is re-walked.
//
// Determinism is unaffected by the concurrency: on-demand cdrc
// samplers are seeded per (concept, doc) (see contextRel in
// engine.go), so whichever goroutine — and whichever generation —
// computes a value computes THE value.

// cdrShards/matchShards size the memo maps. cdr keys are dense (every
// query touches many (concept, doc) pairs) so they get more shards;
// matchShards sizes the engine-wide extent cache.
const (
	cdrShards   = 64
	matchShards = 16
)

// CacheStats reports the engine's query-cache effectiveness: the
// serving layer surfaces it through /statsz.
type CacheStats struct {
	// CDR is the (concept, document) relevance memo (current
	// generation). Matching pairs are served from the plans without
	// touching it, so its entries are on-demand non-matching probes.
	CDR shardmap.Stats `json:"cdr"`
	// Match reports the concept→matching-documents plans (current
	// generation). Plans are precomputed at swap time, so Entries is
	// the number of concepts with a non-empty plan and the hit/miss
	// counters stay zero — the query path never faults one in.
	Match shardmap.Stats `json:"match"`
	// Conn is the engine-wide (generation-independent) connectivity
	// memo behind cdr's expensive factor.
	Conn shardmap.Stats `json:"conn"`
}

// CacheStats returns a point-in-time snapshot of the query caches.
func (e *Engine) CacheStats() CacheStats {
	st := e.state()
	if st == nil {
		return CacheStats{}
	}
	return CacheStats{
		CDR:   st.cdrMemo.Stats(),
		Match: shardmap.Stats{Entries: int64(st.planned)},
		Conn:  e.connMemo.Stats(),
	}
}

// getScorer takes a scorer from the state's pool. Scorers are not safe
// for concurrent use (walk scratch buffers), so each query goroutine
// borrows one for the duration of a computation and returns it with
// putScorer. Extent slices obtained from a pooled scorer stay valid
// after release: the scorer treats them as immutable shared data (see
// relevance.Scorer).
func (st *genState) getScorer() *relevance.Scorer {
	return st.scorers.Get().(*relevance.Scorer)
}

func (st *genState) putScorer(s *relevance.Scorer) { st.scorers.Put(s) }

// reseedConn pins every walked context factor back into the
// engine-wide connectivity memo — after a ResetQueryCaches this
// restores connMemo to exactly the state a fresh build of this
// generation would leave behind. Pairs whose ontology factor is zero
// were never walked and stay out of the connectivity memo. (Planned
// cdr values need no re-seeding: st.cdr reads them straight out of
// the plans, so the swap path never copies them into a map.)
func (st *genState) reseedConn() {
	for c := range st.plans {
		p := &st.plans[c]
		for i, d := range p.docs {
			if p.ont[i] > 0 {
				st.e.connMemo.Store(cdrKey(kg.NodeID(c), d), p.cdrc[i])
			}
		}
	}
}

func hashCDRKey(k uint64) uint64 { return shardmap.Mix64(k) }
