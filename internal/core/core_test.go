package core

import (
	"sync"
	"testing"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
)

// shared world: generating + indexing once keeps the test suite fast.
var (
	worldOnce sync.Once
	worldG    *kg.Graph
	worldMeta *kggen.Meta
	worldC    *corpus.Corpus
	worldE    *Engine
)

func world(t testing.TB) (*kg.Graph, *kggen.Meta, *corpus.Corpus, *Engine) {
	t.Helper()
	worldOnce.Do(func() {
		worldG, worldMeta = kggen.MustGenerate(kggen.Tiny())
		worldC = corpus.MustGenerate(worldG, worldMeta, corpus.Tiny())
		worldE = NewEngine(worldG, Options{Seed: 11, Samples: 20})
		worldE.IndexCorpus(worldC)
	})
	return worldG, worldMeta, worldC, worldE
}

func TestIndexStats(t *testing.T) {
	_, _, c, e := world(t)
	st := e.Stats()
	if st.Docs != c.Len() {
		t.Fatalf("docs = %d, want %d", st.Docs, c.Len())
	}
	for _, src := range corpus.Sources {
		ss := st.PerSource[src]
		if ss.Articles == 0 || ss.TotalMentions == 0 || ss.LinkedMentions == 0 {
			t.Errorf("%s stats empty: %+v", src, ss)
		}
		if ss.LinkedMentions > ss.TotalMentions {
			t.Errorf("%s linked > total", src)
		}
	}
	if st.LinkNanos <= 0 || st.ScoreNanos <= 0 {
		t.Errorf("timings not recorded: link=%d score=%d", st.LinkNanos, st.ScoreNanos)
	}
}

func TestRollUpMatchingSemantics(t *testing.T) {
	g, meta, _, e := world(t)
	for _, topic := range meta.Topics {
		q := Query{topic.Concept, topic.GroupConcept}
		results := e.RollUp(q, 5)
		if len(results) == 0 {
			t.Errorf("topic %q: no results", topic.Name)
			continue
		}
		for _, res := range results {
			// Definition 1: each result must contain an entity from the
			// extent closure of every query concept.
			for _, c := range q {
				ext := map[kg.NodeID]struct{}{}
				for _, v := range g.ExtentClosure(c, 0) {
					ext[v] = struct{}{}
				}
				found := false
				for _, v := range e.Entities(int32(res.Doc)) {
					if _, ok := ext[v]; ok {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("topic %q doc %d does not match concept %q",
						topic.Name, res.Doc, g.Name(c))
				}
			}
		}
		// Scores must be non-increasing.
		for i := 1; i < len(results); i++ {
			if results[i].Score > results[i-1].Score {
				t.Errorf("topic %q results not sorted", topic.Name)
			}
		}
	}
}

func TestRollUpExplanations(t *testing.T) {
	g, meta, _, e := world(t)
	topic := meta.Topics[0]
	q := Query{topic.Concept, topic.GroupConcept}
	results := e.RollUp(q, 3)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, res := range results {
		if len(res.Contributors) != len(q) {
			t.Fatalf("contributors = %d, want %d", len(res.Contributors), len(q))
		}
		total := 0.0
		for _, cc := range res.Contributors {
			total += cc.CDR
			if cc.CDR > 0 && cc.Pivot == kg.InvalidNode {
				t.Error("positive cdr without pivot entity")
			}
			if cc.CDR > 0 && !g.IsInstance(cc.Pivot) {
				t.Error("pivot is not an instance")
			}
		}
		if diff := total - res.Score; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("score %v != Σ contributions %v", res.Score, total)
		}
	}
}

func TestRollUpRetrievesOnTopicDocs(t *testing.T) {
	// Quality smoke test: the top-5 results for each evaluation topic
	// should be mostly docs the generator labelled topical (gold ≥ 3).
	_, meta, c, e := world(t)
	good, total := 0, 0
	for _, topic := range meta.Topics {
		for _, res := range e.RollUp(Query{topic.Concept, topic.GroupConcept}, 5) {
			total++
			if c.Doc(res.Doc).Gold(topic.Concept) >= 3 {
				good++
			}
		}
	}
	if total == 0 {
		t.Fatal("no results at all")
	}
	if frac := float64(good) / float64(total); frac < 0.6 {
		t.Errorf("only %.0f%% of roll-up results are on-topic (%d/%d)", frac*100, good, total)
	}
}

func TestRollUpDeterminism(t *testing.T) {
	g, meta, c, _ := world(t)
	e1 := NewEngine(g, Options{Seed: 5, Samples: 10})
	e1.IndexCorpus(c)
	e2 := NewEngine(g, Options{Seed: 5, Samples: 10})
	e2.IndexCorpus(c)
	q := Query{meta.Topics[0].Concept, meta.Topics[0].GroupConcept}
	r1 := e1.RollUp(q, 10)
	r2 := e2.RollUp(q, 10)
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc || r1[i].Score != r2[i].Score {
			t.Fatalf("result %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	// Same engine, repeated query.
	r3 := e1.RollUp(q, 10)
	for i := range r1 {
		if r1[i].Doc != r3[i].Doc || r1[i].Score != r3[i].Score {
			t.Fatalf("repeat query differs at %d", i)
		}
	}
}

func TestMatchedDocsSubsetAndOrder(t *testing.T) {
	_, meta, _, e := world(t)
	topic := meta.Topics[0]
	both := e.MatchedDocs(Query{topic.Concept, topic.GroupConcept})
	one := e.MatchedDocs(Query{topic.Concept})
	if len(both) > len(one) {
		t.Fatal("adding a concept cannot grow the match set")
	}
	set := map[corpus.DocID]struct{}{}
	for _, d := range one {
		set[d] = struct{}{}
	}
	for i, d := range both {
		if _, ok := set[d]; !ok {
			t.Fatal("intersection not a subset")
		}
		if i > 0 && both[i-1] >= d {
			t.Fatal("matched docs not sorted")
		}
	}
}

func TestDrillDown(t *testing.T) {
	g, meta, _, e := world(t)
	topic := meta.Topics[0]
	q := Query{topic.Concept, topic.GroupConcept}
	subs := e.DrillDown(q, 10)
	if len(subs) == 0 {
		t.Fatal("no subtopics")
	}
	inQ := map[kg.NodeID]struct{}{topic.Concept: {}, topic.GroupConcept: {}}
	for i, sub := range subs {
		if _, bad := inQ[sub.Concept]; bad {
			t.Error("query concept suggested as subtopic")
		}
		if !g.IsConcept(sub.Concept) {
			t.Error("subtopic is not a concept")
		}
		if sub.Coverage < 0 || sub.Diversity < 0 || sub.MatchedDocs <= 0 {
			t.Errorf("bad components: %+v", sub)
		}
		if i > 0 && subs[i-1].Score < sub.Score {
			t.Error("subtopics not sorted")
		}
	}
}

func TestDrillDownNarrowsResults(t *testing.T) {
	// Selecting a suggested subtopic must narrow the matched set:
	// D(Q ∪ {c}) ⊆ D(Q).
	_, meta, _, e := world(t)
	topic := meta.Topics[1]
	q := Query{topic.Concept}
	subs := e.DrillDown(q, 3)
	if len(subs) == 0 {
		t.Skip("no subtopics for this topic")
	}
	before := len(e.MatchedDocs(q))
	after := len(e.MatchedDocs(append(Query{subs[0].Concept}, q...)))
	if after > before {
		t.Fatalf("drill-down grew the result set: %d → %d", before, after)
	}
	if after == 0 {
		t.Fatal("suggested subtopic matches no documents")
	}
}

func TestDrillDownAblationComponents(t *testing.T) {
	_, meta, _, e := world(t)
	topic := meta.Topics[0]
	q := Query{topic.Concept, topic.GroupConcept}
	cOnly := e.DrillDownComponents(q, 5, false, false)
	cs := e.DrillDownComponents(q, 5, true, false)
	csd := e.DrillDownComponents(q, 5, true, true)
	if len(cOnly) == 0 || len(cs) == 0 || len(csd) == 0 {
		t.Fatal("ablation variant returned nothing")
	}
	// Score definitions differ.
	for _, sub := range cOnly {
		if sub.Score != sub.Coverage {
			t.Errorf("C-only score %v != coverage %v", sub.Score, sub.Coverage)
		}
	}
	for _, sub := range csd {
		want := sub.Coverage * sub.Specificity * sub.Diversity
		if diff := sub.Score - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("C+S+D score %v != product %v", sub.Score, want)
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	_, meta, _, e := world(t)
	if got := e.RollUp(nil, 5); got != nil {
		t.Error("empty query should return nil")
	}
	if got := e.RollUp(Query{meta.Topics[0].Concept}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := e.DrillDown(nil, 5); got != nil {
		t.Error("empty drill-down should return nil")
	}
}

func TestConceptsForEntity(t *testing.T) {
	g, _, _, e := world(t)
	ftx := g.MustLookup("FTX")
	concepts := e.ConceptsForEntity(ftx)
	if len(concepts) == 0 {
		t.Fatal("FTX has no concepts")
	}
	found := false
	for _, c := range concepts {
		if g.Name(c) == "Bitcoin exchange" {
			found = true
		}
	}
	if !found {
		t.Error("Bitcoin exchange missing from FTX concepts")
	}
	for i := 1; i < len(concepts); i++ {
		if g.Specificity(concepts[i-1]) < g.Specificity(concepts[i]) {
			t.Error("concepts not sorted by specificity")
		}
	}
}

func TestBroaderOptions(t *testing.T) {
	g, _, _, e := world(t)
	be := g.MustLookup("Bitcoin exchange")
	opts := e.BroaderOptions(be)
	if len(opts) != 1 || g.Name(opts[0]) != "Cryptocurrency" {
		t.Fatalf("broader(Bitcoin exchange) = %v", opts)
	}
}

func TestTopicKeywords(t *testing.T) {
	g, _, _, e := world(t)
	be := g.MustLookup("Bitcoin exchange")
	kws := e.TopicKeywords(be, 5)
	if len(kws) == 0 {
		t.Fatal("no keywords")
	}
	// The curated exchanges are the best-connected members.
	names := map[string]bool{}
	for _, k := range kws {
		names[k] = true
	}
	if !names["FTX"] && !names["Binance"] && !names["Coinbase"] {
		t.Errorf("keywords %v miss the curated exchanges", kws)
	}
	if got := e.TopicKeywords(be, 0); got != nil {
		t.Error("n=0 should return nil")
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, meta, _, e := world(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := meta.Topics[w%len(meta.Topics)]
			q := Query{topic.Concept, topic.GroupConcept}
			e.RollUp(q, 5)
			e.DrillDown(q, 5)
		}(w)
	}
	wg.Wait()
}

func TestDoubleIndexPanics(t *testing.T) {
	g, meta, _, _ := world(t)
	c := corpus.MustGenerate(g, meta, corpus.Tiny())
	e := NewEngine(g, Options{Workers: 1, Samples: 1})
	e.IndexCorpus(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double index")
		}
	}()
	e.IndexCorpus(c)
}

func BenchmarkRollUp(b *testing.B) {
	_, meta, _, e := world(b)
	q := Query{meta.Topics[0].Concept, meta.Topics[0].GroupConcept}
	e.RollUp(q, 5) // warm cdr cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RollUp(q, 5)
	}
}

func BenchmarkDrillDown(b *testing.B) {
	_, meta, _, e := world(b)
	q := Query{meta.Topics[0].Concept, meta.Topics[0].GroupConcept}
	e.DrillDown(q, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DrillDown(q, 10)
	}
}
