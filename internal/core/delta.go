package core

import (
	"sort"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
)

// Standing-query support: the ingest-time evaluation hook.
//
// Every Ingest appends one immutable segment and swaps in the next
// snapshot generation. Immediately after the swap — still under the
// ingest lock, before the checkpoint persists the batch — the engine
// invokes the registered hook with a DeltaView scoped to the documents
// the batch added. The hook is where the watch subsystem evaluates its
// watchlists against just the delta.
//
// Why delta-only evaluation is exact (the correctness argument the
// watch subsystem relies on): Definition-1 matching is a property of
// the document alone — a document matches concept c iff it contains an
// entity in c's extent closure, and both the document's entity list
// and the graph are immutable. So the matched set of a query at
// generation N differs from generation N−1 by exactly the new
// segment's matching documents; no old document can enter or leave it.
// Scores are a different matter: rel(Q, d) reads corpus-global term
// statistics and drifts for every document as the corpus grows, which
// is why the hook scores delta documents at the generation they arrive
// and the watch layer defines its score filter over that value.
//
// Merges never invoke the hook: they keep the generation and change no
// content, so there is no delta to evaluate.

// DeltaView is the evaluation surface handed to the ingest hook: a
// window over the trailing delta of the just-published generation,
// with matching and scoring pinned to that generation's state. It is
// only valid during the hook call (or WithRecentView callback) that
// provided it; holding it longer would pin a dead generation.
type DeltaView struct {
	st   *genState
	base int32
	n    int
}

// Generation returns the snapshot generation the view is pinned to.
func (v *DeltaView) Generation() uint64 { return v.st.snap.Generation }

// NumDocs returns the total corpus size at this generation.
func (v *DeltaView) NumDocs() int { return v.st.snap.NumDocs() }

// DeltaBase returns the global ID of the first delta document.
func (v *DeltaView) DeltaBase() int32 { return v.base }

// DeltaDocs returns the number of documents in the delta.
func (v *DeltaView) DeltaDocs() int { return v.n }

// Source returns the source of a document.
func (v *DeltaView) Source(doc int32) corpus.Source {
	return v.st.snap.Doc(doc).Source
}

// Article returns the immutable display document of a global ID.
func (v *DeltaView) Article(doc int32) *corpus.Document {
	return v.st.snap.Article(doc)
}

// MatchedInDelta returns the delta documents matching every concept of
// q (Definition 1), ascending. The work is proportional to the delta —
// per concept, one extent-closure walk (graph-sized, memoised
// engine-wide) plus the postings of the segments overlapping the delta
// range — never to the whole corpus, which is what keeps standing-query
// evaluation cost flat as the corpus grows.
func (v *DeltaView) MatchedInDelta(q Query) []int32 {
	if len(q) == 0 || v.n == 0 {
		return nil
	}
	st := v.st
	s := st.getScorer()
	defer st.putScorer(s)
	lists := make([][]int32, len(q))
	for i, c := range q {
		ext, _ := s.Extent(c)
		seen := make(map[int32]struct{})
		var docs []int32
		for _, ent := range ext {
			v.deltaEntityDocs(ent, func(list []int32) {
				for _, d := range list {
					if _, ok := seen[d]; !ok {
						seen[d] = struct{}{}
						docs = append(docs, d)
					}
				}
			})
		}
		if len(docs) == 0 {
			return nil
		}
		sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
		lists[i] = docs
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// deltaEntityDocs streams entity ent's posting lists restricted to the
// delta range, skipping segments that end before it. At hook time the
// delta is exactly the newly appended segment, so only that segment is
// touched; the in-segment filter handles views that straddle a segment
// boundary (a full-corpus view, or a delta re-read after a merge).
func (v *DeltaView) deltaEntityDocs(ent kg.NodeID, fn func(docs []int32)) {
	segs := v.st.snap.Segments
	for i := len(segs) - 1; i >= 0; i-- {
		seg := segs[i]
		if seg.Base+int32(seg.Len()) <= v.base {
			break
		}
		list := seg.EntDocs[ent]
		if len(list) == 0 {
			continue
		}
		// Posting lists are ascending: binary-search the first delta doc.
		lo := sort.Search(len(list), func(j int) bool { return list[j] >= v.base })
		if lo < len(list) {
			fn(list[lo:])
		}
	}
}

// Score computes rel(q, d) = Σ cdr(c, d) at this generation, with the
// per-concept explanation — the same memoised path RollUp uses, so a
// standing query and a from-scratch query over the same generation
// report byte-identical scores and evidence.
func (v *DeltaView) Score(q Query, doc int32) (float64, []ConceptContribution) {
	rel := 0.0
	contribs := make([]ConceptContribution, 0, len(q))
	for _, c := range q {
		ent := v.st.cdr(c, doc)
		rel += ent.cdr
		contribs = append(contribs, ConceptContribution{Concept: c, CDR: ent.cdr, Pivot: ent.pivot})
	}
	return rel, contribs
}

// SetIngestHook registers fn to run after every successful Ingest swap,
// before the batch's checkpoint, with a DeltaView over the documents
// the batch added. The hook runs under the ingest lock: evaluations are
// serialised in generation order, and the checkpoint that follows
// persists whatever state the hook committed. Pass nil to clear.
func (e *Engine) SetIngestHook(fn func(*DeltaView)) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.ingestHook = fn
}

// WithRecentView runs fn under the ingest lock with a DeltaView over
// the most recent n documents (the whole corpus when n < 0 or exceeds
// it; an empty delta when n == 0). Because the ingest hook runs under
// the same lock, fn cannot interleave with a delta evaluation — the
// watch subsystem uses that to pin "watch from generation G"
// registration atomically against concurrent ingests. A no-op before
// IndexCorpus.
func (e *Engine) WithRecentView(n int, fn func(*DeltaView)) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	st := e.state()
	if st == nil {
		return
	}
	total := st.snap.NumDocs()
	if n < 0 || n > total {
		n = total
	}
	// The view's base is the global ID of the first of the last n LOCAL
	// documents. A shard's ID space has gaps, so walk segments from the
	// tail instead of subtracting from the count (for a contiguous
	// snapshot the two are identical).
	base := int32(st.snap.DocBound())
	remaining := n
	for i := len(st.snap.Segments) - 1; i >= 0 && remaining > 0; i-- {
		seg := st.snap.Segments[i]
		take := seg.Len()
		if take > remaining {
			take = remaining
		}
		base = seg.Base + int32(seg.Len()-take)
		remaining -= take
	}
	fn(&DeltaView{st: st, base: base, n: n})
}
