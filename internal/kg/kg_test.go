package kg

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ncexplorer/internal/xrand"
)

// buildSample constructs the small KG of Fig. 2 flavour:
//
//	concepts:  Topic ← {Finance ← {Crypto}, Politics}
//	instances: ftx—binance—coinbase (chain), senate (isolated)
//	Ψ: ftx,binance ∈ Crypto; coinbase ∈ Finance; senate ∈ Politics
func buildSample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	topic := b.AddConcept("Topic")
	finance := b.AddConcept("Finance")
	crypto := b.AddConcept("Crypto")
	politics := b.AddConcept("Politics")
	b.AddBroader(finance, topic)
	b.AddBroader(crypto, finance)
	b.AddBroader(politics, topic)

	ftx := b.AddInstance("FTX", "ftx exchange")
	binance := b.AddInstance("Binance")
	coinbase := b.AddInstance("Coinbase")
	senate := b.AddInstance("Senate")
	b.AddInstanceEdge(ftx, binance)
	b.AddInstanceEdge(binance, coinbase)

	b.AddType(ftx, crypto)
	b.AddType(binance, crypto)
	b.AddType(coinbase, finance)
	b.AddType(senate, politics)

	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func names(g *Graph, ids []NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Name(id)
	}
	sort.Strings(out)
	return out
}

func TestCounts(t *testing.T) {
	g := buildSample(t)
	if g.NumConcepts() != 4 || g.NumInstances() != 4 || g.NumNodes() != 8 {
		t.Fatalf("counts: %d concepts, %d instances", g.NumConcepts(), g.NumInstances())
	}
	if g.NumInstanceEdges() != 2 {
		t.Fatalf("instance edges = %d, want 2", g.NumInstanceEdges())
	}
	if g.NumBroaderEdges() != 3 {
		t.Fatalf("broader edges = %d, want 3", g.NumBroaderEdges())
	}
	if g.NumTypeAssertions() != 4 {
		t.Fatalf("type assertions = %d, want 4", g.NumTypeAssertions())
	}
}

func TestBidirectedInstanceEdges(t *testing.T) {
	g := buildSample(t)
	ftx := g.MustLookup("FTX")
	binance := g.MustLookup("Binance")
	if got := names(g, g.InstanceNeighbors(ftx)); len(got) != 1 || got[0] != "Binance" {
		t.Fatalf("FTX neighbors = %v", got)
	}
	got := names(g, g.InstanceNeighbors(binance))
	want := []string{"Coinbase", "FTX"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Binance neighbors = %v, want %v", got, want)
	}
}

func TestDedupParallelEdges(t *testing.T) {
	b := NewBuilder()
	a := b.AddInstance("a")
	c := b.AddInstance("c")
	b.AddInstanceEdge(a, c)
	b.AddInstanceEdge(a, c)
	b.AddInstanceEdge(c, a)
	b.AddInstanceEdge(a, a) // self loop dropped
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInstanceEdges() != 1 {
		t.Fatalf("edges = %d, want 1 after dedup", g.NumInstanceEdges())
	}
	if g.InstanceDegree(a) != 1 || g.InstanceDegree(c) != 1 {
		t.Fatalf("degrees = %d,%d", g.InstanceDegree(a), g.InstanceDegree(c))
	}
}

func TestOntologyRelation(t *testing.T) {
	g := buildSample(t)
	crypto := g.MustLookup("Crypto")
	if got := names(g, g.Extent(crypto)); got[0] != "Binance" || got[1] != "FTX" {
		t.Fatalf("Ψ(Crypto) = %v", got)
	}
	ftx := g.MustLookup("FTX")
	if got := names(g, g.ConceptsOf(ftx)); len(got) != 1 || got[0] != "Crypto" {
		t.Fatalf("Ψ⁻¹(FTX) = %v", got)
	}
}

func TestBroaderNarrower(t *testing.T) {
	g := buildSample(t)
	crypto := g.MustLookup("Crypto")
	finance := g.MustLookup("Finance")
	topic := g.MustLookup("Topic")
	if got := g.Broader(crypto); len(got) != 1 || got[0] != finance {
		t.Fatalf("Broader(Crypto) = %v", names(g, got))
	}
	if got := names(g, g.Narrower(topic)); len(got) != 2 {
		t.Fatalf("Narrower(Topic) = %v", got)
	}
}

func TestExtentClosure(t *testing.T) {
	g := buildSample(t)
	topic := g.MustLookup("Topic")
	got := names(g, g.ExtentClosure(topic, 0))
	want := []string{"Binance", "Coinbase", "FTX", "Senate"}
	if len(got) != len(want) {
		t.Fatalf("closure(Topic) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("closure(Topic) = %v, want %v", got, want)
		}
	}
	finance := g.MustLookup("Finance")
	if got := names(g, g.ExtentClosure(finance, 0)); len(got) != 3 {
		t.Fatalf("closure(Finance) = %v", got)
	}
	if n := g.ExtentClosureSize(finance); n != 3 {
		t.Fatalf("closure size = %d", n)
	}
	// memoised second call
	if n := g.ExtentClosureSize(finance); n != 3 {
		t.Fatalf("memoised closure size = %d", n)
	}
}

func TestExtentClosureNoDoubleCount(t *testing.T) {
	// Diamond: instance belongs to two children of the same parent.
	b := NewBuilder()
	root := b.AddConcept("root")
	l := b.AddConcept("l")
	r := b.AddConcept("r")
	b.AddBroader(l, root)
	b.AddBroader(r, root)
	v := b.AddInstance("v")
	b.AddType(v, l)
	b.AddType(v, r)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ExtentClosure(root, 0); len(got) != 1 {
		t.Fatalf("diamond closure = %d instances, want 1", len(got))
	}
}

func TestSpecificity(t *testing.T) {
	g := buildSample(t)
	crypto := g.MustLookup("Crypto")
	topic := g.MustLookup("Topic")
	// |V_I| = 4, |Ψ(Crypto)| = 2 → log 2
	if got := g.Specificity(crypto); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("Specificity(Crypto) = %v", got)
	}
	// Topic has empty direct extent; closure = 4 → log 1 = 0.
	if got := g.Specificity(topic); got != 0 {
		t.Fatalf("Specificity(Topic) = %v, want 0", got)
	}
	// Specific concepts must outrank broad ones.
	if g.Specificity(crypto) <= g.Specificity(topic) {
		t.Fatal("specific concept should have higher specificity than broad one")
	}
}

func TestAncestorsWithin(t *testing.T) {
	g := buildSample(t)
	crypto := g.MustLookup("Crypto")
	if got := names(g, g.AncestorsWithin(crypto, 1)); len(got) != 1 || got[0] != "Finance" {
		t.Fatalf("1-hop ancestors = %v", got)
	}
	got := names(g, g.AncestorsWithin(crypto, 2))
	if len(got) != 2 || got[0] != "Finance" || got[1] != "Topic" {
		t.Fatalf("2-hop ancestors = %v", got)
	}
}

func TestBuildValidation(t *testing.T) {
	b := NewBuilder()
	c := b.AddConcept("c")
	v := b.AddInstance("v")
	b.AddInstanceEdge(v, c) // wrong kind
	if _, err := b.Build(); err == nil {
		t.Fatal("expected kind-mismatch error")
	}

	b2 := NewBuilder()
	b2.AddConcept("only-concepts")
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected no-instances error")
	}
}

func TestIdempotentAdd(t *testing.T) {
	b := NewBuilder()
	a1 := b.AddInstance("a")
	a2 := b.AddInstance("a", "alias-a")
	if a1 != a2 {
		t.Fatal("duplicate add should return same id")
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if al := g.Aliases(a1); len(al) != 1 || al[0] != "alias-a" {
		t.Fatalf("aliases = %v", al)
	}
}

func TestLookup(t *testing.T) {
	g := buildSample(t)
	if _, ok := g.Lookup("FTX"); !ok {
		t.Fatal("lookup FTX failed")
	}
	if _, ok := g.Lookup("nope"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown should panic")
		}
	}()
	g.MustLookup("nope")
}

func TestStats(t *testing.T) {
	g := buildSample(t)
	s := g.Stats()
	if s.Instances != 4 || s.Concepts != 4 || s.InstanceEdges != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxInstDegree != 2 {
		t.Fatalf("max degree = %d, want 2 (Binance)", s.MaxInstDegree)
	}
	if math.Abs(s.AvgInstDegree-1.0) > 1e-9 { // degrees 1,2,1,0
		t.Fatalf("avg degree = %v, want 1.0", s.AvgInstDegree)
	}
}

func TestIterators(t *testing.T) {
	g := buildSample(t)
	var inst, conc int
	g.Instances(func(NodeID) bool { inst++; return true })
	g.Concepts(func(NodeID) bool { conc++; return true })
	if inst != 4 || conc != 4 {
		t.Fatalf("iterated %d instances, %d concepts", inst, conc)
	}
	// early stop
	n := 0
	g.Instances(func(NodeID) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	g := buildSample(t)
	var buf bytes.Buffer
	if err := g.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() ||
		g2.NumInstanceEdges() != g.NumInstanceEdges() ||
		g2.NumBroaderEdges() != g.NumBroaderEdges() ||
		g2.NumTypeAssertions() != g.NumTypeAssertions() {
		t.Fatalf("round trip mismatch: %+v vs %+v", g2.Stats(), g.Stats())
	}
	ftx := g2.MustLookup("FTX")
	if got := names(g2, g2.ConceptsOf(ftx)); len(got) != 1 || got[0] != "Crypto" {
		t.Fatalf("round-tripped Ψ⁻¹(FTX) = %v", got)
	}
	if al := g2.Aliases(ftx); len(al) != 1 || al[0] != "ftx exchange" {
		t.Fatalf("round-tripped aliases = %v", al)
	}
}

func TestLoadRejectsUnknownRefs(t *testing.T) {
	bad := `{"instances":[{"name":"a"}],"concepts":[],"instance_edges":[["a","ghost"]],"broader_edges":[],"type_assertions":[]}`
	if _, err := Load(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("expected error for unknown edge endpoint")
	}
}

// Property: for a random graph, CSR neighbour lists are sorted, deduped,
// and symmetric in the instance space.
func TestCSRInvariants(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		b := NewBuilder()
		const n = 40
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddInstance(string(rune('A'+i%26)) + string(rune('a'+i/26)))
		}
		for e := 0; e < 120; e++ {
			b.AddInstanceEdge(ids[r.Intn(n)], ids[r.Intn(n)])
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for _, u := range ids {
			nbrs := g.InstanceNeighbors(u)
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i-1] >= nbrs[i] {
					return false // not strictly sorted ⇒ dup or disorder
				}
			}
			for _, v := range nbrs {
				if !containsNode(g.InstanceNeighbors(v), u) {
					return false // asymmetric
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func containsNode(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
