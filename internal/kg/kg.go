// Package kg implements the knowledge-graph substrate NCExplorer runs on.
//
// Following §III of the paper, a KG is a bidirected multigraph
// G = (V_C ∪ V_I, E_C ∪ E_I, Ψ):
//
//   - V_I, the instance space: real-world entities (companies, people,
//     countries, …) connected by instance edges E_I (facts).
//   - V_C, the concept space: ontology categories connected by E_C,
//     which here is the `broader` hierarchy (child concept → parent
//     concept), as in DBpedia/SKOS.
//   - Ψ, the ontology relation: Ψ(c) maps a concept to its directly
//     asserted instance entities, Ψ⁻¹(v) maps an instance to its
//     directly asserted concepts.
//
// The graph is frozen into CSR (compressed sparse row) adjacency arrays
// by a Builder, after which all queries are allocation-free slice views.
// Node identity is a dense int32 so large graphs stay compact.
package kg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// NodeID identifies a node (concept or instance) in the graph.
type NodeID int32

// InvalidNode is returned by lookups that find nothing.
const InvalidNode NodeID = -1

// Kind distinguishes the two node spaces.
type Kind uint8

const (
	// KindInstance marks a node in the instance (fact) space V_I.
	KindInstance Kind = iota
	// KindConcept marks a node in the ontology (concept) space V_C.
	KindConcept
)

func (k Kind) String() string {
	if k == KindConcept {
		return "concept"
	}
	return "instance"
}

// csr is a frozen adjacency list: the neighbours of node i occupy
// adj[off[i]:off[i+1]].
type csr struct {
	off []int64
	adj []NodeID
}

func (c *csr) neighbors(v NodeID) []NodeID {
	return c.adj[c.off[v]:c.off[v+1]]
}

func (c *csr) degree(v NodeID) int {
	return int(c.off[v+1] - c.off[v])
}

// Graph is an immutable knowledge graph. Construct one with a Builder.
// All methods are safe for concurrent use.
type Graph struct {
	names   []string
	kinds   []Kind
	aliases map[NodeID][]string

	inst     csr // instance-space edges (bidirected)
	broader  csr // concept → its broader (parent) concepts
	narrower csr // concept → its narrower (child) concepts
	extent   csr // Ψ: concept → direct instance members
	types    csr // Ψ⁻¹: instance → direct concepts

	byName map[string]NodeID

	numInstances int
	numConcepts  int
	instEdges    int64
	broaderEdges int64
	typeEdges    int64

	closureMu sync.Mutex
	closure   map[NodeID]int // memoised ExtentClosureSize

	specOnce sync.Once
	spec     []float64 // memoised Specificity, filled on first use
}

// NumNodes returns the total node count |V_C| + |V_I|.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumInstances returns |V_I|.
func (g *Graph) NumInstances() int { return g.numInstances }

// NumConcepts returns |V_C|.
func (g *Graph) NumConcepts() int { return g.numConcepts }

// NumInstanceEdges returns the number of undirected instance edges.
func (g *Graph) NumInstanceEdges() int64 { return g.instEdges }

// NumBroaderEdges returns the number of broader (child→parent) edges.
func (g *Graph) NumBroaderEdges() int64 { return g.broaderEdges }

// NumTypeAssertions returns |Ψ| (instance, concept) pairs.
func (g *Graph) NumTypeAssertions() int64 { return g.typeEdges }

// Name returns the canonical name of a node.
func (g *Graph) Name(v NodeID) string { return g.names[v] }

// Aliases returns the alternative surface forms registered for a node
// (not including the canonical name). The returned slice must not be
// modified.
func (g *Graph) Aliases(v NodeID) []string { return g.aliases[v] }

// Kind reports whether v is a concept or an instance.
func (g *Graph) Kind(v NodeID) Kind { return g.kinds[v] }

// IsConcept reports whether v ∈ V_C.
func (g *Graph) IsConcept(v NodeID) bool { return g.kinds[v] == KindConcept }

// IsInstance reports whether v ∈ V_I.
func (g *Graph) IsInstance(v NodeID) bool { return g.kinds[v] == KindInstance }

// Valid reports whether v is a node of this graph.
func (g *Graph) Valid(v NodeID) bool { return v >= 0 && int(v) < len(g.names) }

// Lookup resolves a canonical name to its node.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// MustLookup resolves a canonical name and panics if absent. Intended
// for tests and examples operating on curated graphs.
func (g *Graph) MustLookup(name string) NodeID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("kg: node %q not found", name))
	}
	return id
}

// InstanceNeighbors returns the instance-space neighbours of v. The
// returned slice is a view into the CSR arrays; do not modify it.
func (g *Graph) InstanceNeighbors(v NodeID) []NodeID { return g.inst.neighbors(v) }

// InstanceDegree returns the instance-space degree of v.
func (g *Graph) InstanceDegree(v NodeID) int { return g.inst.degree(v) }

// Broader returns the parent concepts of c along `broader` edges.
func (g *Graph) Broader(c NodeID) []NodeID { return g.broader.neighbors(c) }

// Narrower returns the child concepts of c (reverse of Broader).
func (g *Graph) Narrower(c NodeID) []NodeID { return g.narrower.neighbors(c) }

// Extent returns Ψ(c): the instances directly asserted to belong to c.
func (g *Graph) Extent(c NodeID) []NodeID { return g.extent.neighbors(c) }

// ExtentSize returns |Ψ(c)| for the direct extent.
func (g *Graph) ExtentSize(c NodeID) int { return g.extent.degree(c) }

// ConceptsOf returns Ψ⁻¹(v): the concepts directly asserted for v.
func (g *Graph) ConceptsOf(v NodeID) []NodeID { return g.types.neighbors(v) }

// ExtentClosure returns the instances of c or of any concept reachable
// from c via `narrower` edges, visiting at most maxConcepts concepts
// (0 = unlimited). This is the extended extension used for matching
// rolled-up broad concepts: the paper's rule that a broad concept
// without a direct document link is represented by an "edge concept
// among its children" implies membership is evaluated on descendants.
// The result is sorted and deduplicated.
func (g *Graph) ExtentClosure(c NodeID, maxConcepts int) []NodeID {
	seen := map[NodeID]struct{}{c: {}}
	queue := []NodeID{c}
	var out []NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, g.Extent(cur)...)
		if maxConcepts > 0 && len(seen) >= maxConcepts {
			continue
		}
		for _, child := range g.Narrower(cur) {
			if _, ok := seen[child]; !ok {
				seen[child] = struct{}{}
				queue = append(queue, child)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	out = dedupSorted(out)
	return out
}

// ExtentClosureSize returns |ExtentClosure(c, 0)| with memoisation. It
// backs the specificity score for broad concepts whose direct extent is
// empty.
func (g *Graph) ExtentClosureSize(c NodeID) int {
	g.closureMu.Lock()
	if n, ok := g.closure[c]; ok {
		g.closureMu.Unlock()
		return n
	}
	g.closureMu.Unlock()
	n := len(g.ExtentClosure(c, 0))
	g.closureMu.Lock()
	g.closure[c] = n
	g.closureMu.Unlock()
	return n
}

// Specificity returns log(|V_I| / |Ψ(c)|), the paper's concept
// specificity score. When the direct extent is empty (a purely abstract
// concept) the closure extent is used, matching the paper's edge-concept
// substitution; a concept with no instances at all scores as if it had a
// single instance (maximal specificity) rather than dividing by zero.
//
// Values are pure graph data read in hot query loops (drill-down
// shortlisting, plan ceilings), so the whole table is computed once on
// first use and served lock-free afterwards.
func (g *Graph) Specificity(c NodeID) float64 {
	g.specOnce.Do(g.fillSpecificity)
	if c < 0 || int(c) >= len(g.spec) {
		return g.specificityOf(c)
	}
	return g.spec[c]
}

// SpecTable returns the memoised specificity table indexed by node ID.
// The slice is shared and must not be modified; it lets hot loops index
// directly instead of paying a call per lookup.
func (g *Graph) SpecTable() []float64 {
	g.specOnce.Do(g.fillSpecificity)
	return g.spec
}

func (g *Graph) fillSpecificity() {
	spec := make([]float64, g.NumNodes())
	for i := range spec {
		spec[i] = g.specificityOf(NodeID(i))
	}
	g.spec = spec
}

func (g *Graph) specificityOf(c NodeID) float64 {
	n := g.ExtentSize(c)
	if n == 0 {
		n = g.ExtentClosureSize(c)
	}
	if n == 0 {
		n = 1
	}
	return math.Log(float64(g.numInstances) / float64(n))
}

// AncestorsWithin returns all concepts reachable from c by following at
// most depth `broader` edges, excluding c itself, in BFS order.
func (g *Graph) AncestorsWithin(c NodeID, depth int) []NodeID {
	type item struct {
		n NodeID
		d int
	}
	seen := map[NodeID]struct{}{c: {}}
	queue := []item{{c, 0}}
	var out []NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d == depth {
			continue
		}
		for _, p := range g.Broader(cur.n) {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				out = append(out, p)
				queue = append(queue, item{p, cur.d + 1})
			}
		}
	}
	return out
}

// Instances iterates all instance node IDs in ascending order, calling
// fn for each. Iteration stops if fn returns false.
func (g *Graph) Instances(fn func(NodeID) bool) {
	for i := range g.kinds {
		if g.kinds[i] == KindInstance {
			if !fn(NodeID(i)) {
				return
			}
		}
	}
}

// Concepts iterates all concept node IDs in ascending order, calling fn
// for each. Iteration stops if fn returns false.
func (g *Graph) Concepts(fn func(NodeID) bool) {
	for i := range g.kinds {
		if g.kinds[i] == KindConcept {
			if !fn(NodeID(i)) {
				return
			}
		}
	}
}

// Stats summarises graph dimensions, mirroring the dataset statistics
// the paper reports for the DBpedia snapshot.
type Stats struct {
	Nodes          int
	Instances      int
	Concepts       int
	InstanceEdges  int64
	BroaderEdges   int64
	TypeAssertions int64
	AvgInstDegree  float64
	MaxInstDegree  int
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	s := Stats{
		Nodes:          g.NumNodes(),
		Instances:      g.numInstances,
		Concepts:       g.numConcepts,
		InstanceEdges:  g.instEdges,
		BroaderEdges:   g.broaderEdges,
		TypeAssertions: g.typeEdges,
	}
	var total int64
	for i := range g.kinds {
		if g.kinds[i] != KindInstance {
			continue
		}
		d := g.inst.degree(NodeID(i))
		total += int64(d)
		if d > s.MaxInstDegree {
			s.MaxInstDegree = d
		}
	}
	if g.numInstances > 0 {
		s.AvgInstDegree = float64(total) / float64(g.numInstances)
	}
	return s
}

// Builder accumulates nodes and edges and freezes them into a Graph.
// It is not safe for concurrent use.
type Builder struct {
	names   []string
	kinds   []Kind
	aliases map[NodeID][]string
	byName  map[string]NodeID

	instEdges [][2]NodeID // undirected instance pairs
	broader   [][2]NodeID // child, parent
	typeEdges [][2]NodeID // instance, concept
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		byName:  make(map[string]NodeID),
		aliases: make(map[NodeID][]string),
	}
}

func (b *Builder) addNode(name string, kind Kind, aliases []string) NodeID {
	if id, ok := b.byName[name]; ok {
		// Idempotent adds keep generators simple; kinds must agree.
		if b.kinds[id] != kind {
			panic(fmt.Sprintf("kg: node %q re-added with different kind", name))
		}
		if len(aliases) > 0 {
			b.aliases[id] = append(b.aliases[id], aliases...)
		}
		return id
	}
	id := NodeID(len(b.names))
	b.names = append(b.names, name)
	b.kinds = append(b.kinds, kind)
	b.byName[name] = id
	if len(aliases) > 0 {
		b.aliases[id] = append([]string(nil), aliases...)
	}
	return id
}

// AddInstance registers an instance entity with optional alias surface
// forms; repeated adds with the same name return the same NodeID.
func (b *Builder) AddInstance(name string, aliases ...string) NodeID {
	return b.addNode(name, KindInstance, aliases)
}

// AddConcept registers a concept entity.
func (b *Builder) AddConcept(name string, aliases ...string) NodeID {
	return b.addNode(name, KindConcept, aliases)
}

// Lookup resolves a name registered so far.
func (b *Builder) Lookup(name string) (NodeID, bool) {
	id, ok := b.byName[name]
	return id, ok
}

// NumNodes returns the number of nodes registered so far.
func (b *Builder) NumNodes() int { return len(b.names) }

// AddInstanceEdge records an undirected fact edge between two instance
// entities. Self-loops are ignored.
func (b *Builder) AddInstanceEdge(u, v NodeID) {
	if u == v {
		return
	}
	b.instEdges = append(b.instEdges, [2]NodeID{u, v})
}

// AddBroader records that child's broader concept is parent.
func (b *Builder) AddBroader(child, parent NodeID) {
	if child == parent {
		return
	}
	b.broader = append(b.broader, [2]NodeID{child, parent})
}

// AddType records the ontology assertion v ∈ Ψ(c).
func (b *Builder) AddType(instance, concept NodeID) {
	b.typeEdges = append(b.typeEdges, [2]NodeID{instance, concept})
}

// Build validates and freezes the accumulated data into a Graph. The
// Builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.names)
	check := func(v NodeID, wantKind Kind, what string) error {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("kg: %s references unknown node %d", what, v)
		}
		if b.kinds[v] != wantKind {
			return fmt.Errorf("kg: %s references %q which is a %s, want %s",
				what, b.names[v], b.kinds[v], wantKind)
		}
		return nil
	}
	for _, e := range b.instEdges {
		if err := check(e[0], KindInstance, "instance edge"); err != nil {
			return nil, err
		}
		if err := check(e[1], KindInstance, "instance edge"); err != nil {
			return nil, err
		}
	}
	for _, e := range b.broader {
		if err := check(e[0], KindConcept, "broader edge"); err != nil {
			return nil, err
		}
		if err := check(e[1], KindConcept, "broader edge"); err != nil {
			return nil, err
		}
	}
	for _, e := range b.typeEdges {
		if err := check(e[0], KindInstance, "type assertion"); err != nil {
			return nil, err
		}
		if err := check(e[1], KindConcept, "type assertion"); err != nil {
			return nil, err
		}
	}

	g := &Graph{
		names:   b.names,
		kinds:   b.kinds,
		aliases: b.aliases,
		byName:  b.byName,
		closure: make(map[NodeID]int),
	}
	for _, k := range b.kinds {
		if k == KindInstance {
			g.numInstances++
		} else {
			g.numConcepts++
		}
	}

	// The instance space is bidirected: store each undirected edge in
	// both adjacency rows, then dedup.
	instPairs := make([][2]NodeID, 0, len(b.instEdges)*2)
	for _, e := range b.instEdges {
		instPairs = append(instPairs, e, [2]NodeID{e[1], e[0]})
	}
	var kept int64
	g.inst, kept = buildCSR(n, instPairs)
	g.instEdges = kept / 2

	g.broader, g.broaderEdges = buildCSR(n, b.broader)
	reversed := make([][2]NodeID, len(b.broader))
	for i, e := range b.broader {
		reversed[i] = [2]NodeID{e[1], e[0]}
	}
	g.narrower, _ = buildCSR(n, reversed)

	g.types, g.typeEdges = buildCSR(n, b.typeEdges)
	extPairs := make([][2]NodeID, len(b.typeEdges))
	for i, e := range b.typeEdges {
		extPairs[i] = [2]NodeID{e[1], e[0]}
	}
	g.extent, _ = buildCSR(n, extPairs)

	if g.numInstances == 0 {
		return nil, errors.New("kg: graph has no instance entities")
	}
	return g, nil
}

// buildCSR sorts (src, dst) pairs into CSR form, deduplicating parallel
// edges, and returns the structure plus the number of retained edges.
func buildCSR(n int, pairs [][2]NodeID) (csr, int64) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	off := make([]int64, n+1)
	adj := make([]NodeID, 0, len(pairs))
	var prev [2]NodeID
	first := true
	for _, p := range pairs {
		if !first && p == prev {
			continue
		}
		first = false
		prev = p
		off[p[0]+1]++
		adj = append(adj, p[1])
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	return csr{off: off, adj: adj}, int64(len(adj))
}

func dedupSorted(s []NodeID) []NodeID {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
