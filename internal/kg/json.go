package kg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation used by Dump/Load. It is a
// straightforward edge-list format: easy to diff, easy to consume from
// other tooling, and loadable back through the Builder so all Build-time
// validation applies.
type jsonGraph struct {
	Instances []jsonNode  `json:"instances"`
	Concepts  []jsonNode  `json:"concepts"`
	InstEdges [][2]string `json:"instance_edges"`
	Broader   [][2]string `json:"broader_edges"`
	Types     [][2]string `json:"type_assertions"`
}

type jsonNode struct {
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
}

// Dump writes the graph as JSON to w.
func (g *Graph) Dump(w io.Writer) error {
	jg := jsonGraph{}
	for i, name := range g.names {
		node := jsonNode{Name: name, Aliases: g.aliases[NodeID(i)]}
		if g.kinds[i] == KindInstance {
			jg.Instances = append(jg.Instances, node)
		} else {
			jg.Concepts = append(jg.Concepts, node)
		}
	}
	for i := range g.names {
		u := NodeID(i)
		if g.kinds[i] == KindInstance {
			for _, v := range g.InstanceNeighbors(u) {
				if u < v { // store each undirected edge once
					jg.InstEdges = append(jg.InstEdges, [2]string{g.names[u], g.names[v]})
				}
			}
			for _, c := range g.ConceptsOf(u) {
				jg.Types = append(jg.Types, [2]string{g.names[u], g.names[c]})
			}
		} else {
			for _, p := range g.Broader(u) {
				jg.Broader = append(jg.Broader, [2]string{g.names[u], g.names[p]})
			}
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&jg); err != nil {
		return fmt.Errorf("kg: dump: %w", err)
	}
	return bw.Flush()
}

// Load reads a graph previously written by Dump.
func Load(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("kg: load: %w", err)
	}
	b := NewBuilder()
	for _, n := range jg.Instances {
		b.AddInstance(n.Name, n.Aliases...)
	}
	for _, n := range jg.Concepts {
		b.AddConcept(n.Name, n.Aliases...)
	}
	resolve := func(name, what string) (NodeID, error) {
		id, ok := b.Lookup(name)
		if !ok {
			return InvalidNode, fmt.Errorf("kg: load: %s references unknown node %q", what, name)
		}
		return id, nil
	}
	for _, e := range jg.InstEdges {
		u, err := resolve(e[0], "instance edge")
		if err != nil {
			return nil, err
		}
		v, err := resolve(e[1], "instance edge")
		if err != nil {
			return nil, err
		}
		b.AddInstanceEdge(u, v)
	}
	for _, e := range jg.Broader {
		c, err := resolve(e[0], "broader edge")
		if err != nil {
			return nil, err
		}
		p, err := resolve(e[1], "broader edge")
		if err != nil {
			return nil, err
		}
		b.AddBroader(c, p)
	}
	for _, e := range jg.Types {
		v, err := resolve(e[0], "type assertion")
		if err != nil {
			return nil, err
		}
		c, err := resolve(e[1], "type assertion")
		if err != nil {
			return nil, err
		}
		b.AddType(v, c)
	}
	return b.Build()
}
