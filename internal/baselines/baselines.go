// Package baselines implements the four compared methods of the
// paper's evaluation (§IV) behind one Searcher interface, so the
// harness treats every method — including NCExplorer via an adapter —
// uniformly:
//
//   - Lucene: bag-of-words keyword match with BM25 (internal/textindex);
//   - BERT: dense retrieval over deterministic text embeddings
//     (internal/embed) through the vector store (internal/vecstore);
//   - NewsLink: the structure-based state of the art — documents and
//     queries are expanded into KG subgraphs (seed entities plus
//     connecting nodes) and matched as bags of KG nodes;
//   - NewsLink-BERT: the hybrid — the query's NewsLink expansion is
//     verbalised into a long text query and retrieved densely.
package baselines

import (
	"sort"
	"strconv"
	"strings"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/embed"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/nlp"
	"ncexplorer/internal/textindex"
	"ncexplorer/internal/vecstore"
)

// Query carries both the keyword form (for text methods) and the
// concept-pattern form (for KG methods) of an evaluation query, e.g.
// Text "Elections in African countries", Concepts {Elections, African
// country}.
type Query struct {
	Text     string
	Concepts []kg.NodeID
}

// Result is one retrieved document.
type Result struct {
	Doc   corpus.DocID
	Score float64
}

// Searcher is the common retrieval interface.
type Searcher interface {
	// Name identifies the method in tables ("Lucene", "BERT", …).
	Name() string
	// Index ingests the corpus. Called once.
	Index(c *corpus.Corpus) error
	// Search returns the top-k documents for the query.
	Search(q Query, k int) []Result
}

// ── Lucene ──────────────────────────────────────────────────────────

// Lucene is the BM25 bag-of-words baseline.
type Lucene struct {
	ix *textindex.Index
}

// NewLucene returns an unindexed Lucene baseline.
func NewLucene() *Lucene { return &Lucene{ix: textindex.New()} }

// Name implements Searcher.
func (l *Lucene) Name() string { return "Lucene" }

// Index implements Searcher.
func (l *Lucene) Index(c *corpus.Corpus) error {
	for i := range c.Docs {
		l.ix.Add(int32(c.Docs[i].ID), nlp.Terms(c.Docs[i].Text()))
	}
	return nil
}

// Search implements Searcher.
func (l *Lucene) Search(q Query, k int) []Result {
	return toResults(l.ix.SearchBM25(nlp.Terms(q.Text), k))
}

// Score returns the raw BM25 score of one document for a query text
// (0 when unranked); the evaluator model uses it as the surface-match
// signal.
func (l *Lucene) Score(text string, doc corpus.DocID) float64 {
	terms := nlp.Terms(text)
	hits := l.ix.SearchBM25(terms, l.ix.NumDocs())
	for _, h := range hits {
		if corpus.DocID(h.Doc) == doc {
			return h.Score
		}
	}
	return 0
}

func toResults(hits []textindex.Hit) []Result {
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{Doc: corpus.DocID(h.Doc), Score: h.Score}
	}
	return out
}

// ── BERT ────────────────────────────────────────────────────────────

// BERT is the dense-retrieval baseline (SBERT + Qdrant in the paper).
type BERT struct {
	emb   *embed.Embedder
	store *vecstore.Store
}

// NewBERT returns an unindexed BERT baseline.
func NewBERT() *BERT {
	e := embed.New(0)
	return &BERT{emb: e, store: vecstore.New(e.Dim())}
}

// Name implements Searcher.
func (b *BERT) Name() string { return "BERT" }

// Index implements Searcher.
func (b *BERT) Index(c *corpus.Corpus) error {
	for i := range c.Docs {
		if err := b.store.Add(int32(c.Docs[i].ID), b.emb.EmbedText(c.Docs[i].Text())); err != nil {
			return err
		}
	}
	return nil
}

// Search implements Searcher.
func (b *BERT) Search(q Query, k int) []Result {
	return b.SearchVector(b.emb.EmbedText(q.Text), k)
}

// SearchVector retrieves by a caller-built query vector (used by the
// NewsLink-BERT hybrid to mix query and expansion embeddings).
func (b *BERT) SearchVector(v []float32, k int) []Result {
	hits := b.store.Search(v, k)
	out := make([]Result, len(hits))
	for i, h := range hits {
		out[i] = Result{Doc: corpus.DocID(h.ID), Score: h.Score}
	}
	return out
}

// Embedder exposes the baseline's embedder (shared by the hybrid).
func (b *BERT) Embedder() *embed.Embedder { return b.emb }

// ── NewsLink ────────────────────────────────────────────────────────

// NewsLink is the structure-based baseline: each document is expanded
// into a KG subgraph (its seed entities plus hidden nodes connecting
// them) and represented as a bag of KG node IDs; queries expand the
// same way from their concept pattern. Matching is BM25 over node-ID
// pseudo-terms, following the paper's description of NewsLink treating
// "each KG entity in the extracted graph … as a matching keyword in the
// bag-of-words model".
type NewsLink struct {
	g      *kg.Graph
	linker *nlp.Linker
	ix     *textindex.Index

	// expansion caps keep subgraphs compact, as in the original system.
	maxSeeds     int
	maxExpansion int
}

// NewNewsLink returns an unindexed NewsLink baseline over the graph.
func NewNewsLink(g *kg.Graph, linker *nlp.Linker) *NewsLink {
	return &NewsLink{
		g: g, linker: linker, ix: textindex.New(),
		maxSeeds: 8, maxExpansion: 48,
	}
}

// Name implements Searcher.
func (n *NewsLink) Name() string { return "NewsLink" }

// Index implements Searcher.
func (n *NewsLink) Index(c *corpus.Corpus) error {
	for i := range c.Docs {
		ann := n.linker.Annotate(c.Docs[i].Text())
		seeds := ann.TopEntities(n.maxSeeds)
		nodes := n.Expand(seeds)
		tf := make(map[string]int, len(nodes))
		for _, v := range nodes {
			tf[nodeTerm(v)]++
		}
		// Seed entities count their true mention frequency.
		for _, v := range seeds {
			if f := ann.EntityFreq[v]; f > 1 {
				tf[nodeTerm(v)] += f - 1
			}
		}
		n.ix.Add(int32(c.Docs[i].ID), tf)
	}
	return nil
}

func nodeTerm(v kg.NodeID) string { return "n" + strconv.Itoa(int(v)) }

// Expand builds the subgraph node set for a seed list: the seeds, the
// common neighbours linking any two seeds (the "hidden related nodes"
// NewsLink adds), and the seeds' direct concepts.
func (n *NewsLink) Expand(seeds []kg.NodeID) []kg.NodeID {
	set := make(map[kg.NodeID]struct{}, len(seeds)*3)
	for _, s := range seeds {
		set[s] = struct{}{}
	}
	// Hidden nodes: common instance-space neighbours of seed pairs.
	for i := 0; i < len(seeds) && len(set) < n.maxExpansion; i++ {
		neigh := make(map[kg.NodeID]struct{})
		for _, x := range n.g.InstanceNeighbors(seeds[i]) {
			neigh[x] = struct{}{}
		}
		for j := i + 1; j < len(seeds) && len(set) < n.maxExpansion; j++ {
			for _, y := range n.g.InstanceNeighbors(seeds[j]) {
				if _, ok := neigh[y]; ok {
					set[y] = struct{}{}
				}
			}
		}
	}
	// Ontology context: the seeds' direct concepts.
	for _, s := range seeds {
		for _, c := range n.g.ConceptsOf(s) {
			if len(set) >= n.maxExpansion {
				break
			}
			set[c] = struct{}{}
		}
	}
	out := make([]kg.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// querySeeds turns a concept pattern into seed entities: the best-
// connected members of each concept's extent.
func (n *NewsLink) querySeeds(concepts []kg.NodeID) []kg.NodeID {
	var seeds []kg.NodeID
	for _, c := range concepts {
		ext := n.g.ExtentClosure(c, 50)
		best := kg.InvalidNode
		bestDeg := -1
		var second kg.NodeID = kg.InvalidNode
		secondDeg := -1
		for _, v := range ext {
			d := n.g.InstanceDegree(v)
			if d > bestDeg {
				second, secondDeg = best, bestDeg
				best, bestDeg = v, d
			} else if d > secondDeg {
				second, secondDeg = v, d
			}
		}
		if best != kg.InvalidNode {
			seeds = append(seeds, best)
		}
		if second != kg.InvalidNode {
			seeds = append(seeds, second)
		}
	}
	return seeds
}

// ExpandQuery returns the expansion node set for a concept-pattern
// query (exported for the NewsLink-BERT hybrid).
func (n *NewsLink) ExpandQuery(concepts []kg.NodeID) []kg.NodeID {
	nodes := n.Expand(n.querySeeds(concepts))
	// The query concepts themselves participate (they are KG nodes).
	set := make(map[kg.NodeID]struct{}, len(nodes)+len(concepts))
	for _, v := range nodes {
		set[v] = struct{}{}
	}
	for _, c := range concepts {
		set[c] = struct{}{}
	}
	out := make([]kg.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Search implements Searcher.
func (n *NewsLink) Search(q Query, k int) []Result {
	nodes := n.ExpandQuery(q.Concepts)
	tf := make(map[string]int, len(nodes))
	for _, v := range nodes {
		tf[nodeTerm(v)]++
	}
	return toResults(n.ix.SearchBM25(tf, k))
}

// ── NewsLink-BERT ───────────────────────────────────────────────────

// NewsLinkBERT expands the query with NewsLink's subgraph algorithm,
// verbalises the node names into a long text query, and retrieves with
// the dense index.
type NewsLinkBERT struct {
	nl   *NewsLink
	bert *BERT
}

// NewNewsLinkBERT returns the hybrid baseline sharing the graph and
// linker with a NewsLink instance.
func NewNewsLinkBERT(g *kg.Graph, linker *nlp.Linker) *NewsLinkBERT {
	return &NewsLinkBERT{nl: NewNewsLink(g, linker), bert: NewBERT()}
}

// Name implements Searcher.
func (h *NewsLinkBERT) Name() string { return "NewsLink-BERT" }

// Index implements Searcher.
func (h *NewsLinkBERT) Index(c *corpus.Corpus) error {
	return h.bert.Index(c)
}

// Search implements Searcher. The query vector mixes the original
// query text with the verbalised expansion subgraph. The expansion
// carries the slightly larger share: entity names are what reach
// specialist-register articles that avoid the topic's surface words —
// the advantage the paper attributes to the hybrid.
func (h *NewsLinkBERT) Search(q Query, k int) []Result {
	nodes := h.nl.ExpandQuery(q.Concepts)
	var sb strings.Builder
	for _, v := range nodes {
		sb.WriteByte(' ')
		sb.WriteString(h.nl.g.Name(v))
	}
	emb := h.bert.Embedder()
	qv := emb.EmbedText(q.Text)
	ev := emb.EmbedText(sb.String())
	mixed := make([]float32, len(qv))
	for i := range mixed {
		mixed[i] = 0.45*qv[i] + 0.55*ev[i]
	}
	return h.bert.SearchVector(mixed, k)
}
