package baselines

import (
	"sync"
	"testing"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/nlp"
)

var (
	once  sync.Once
	tG    *kg.Graph
	tMeta *kggen.Meta
	tC    *corpus.Corpus
	tLink *nlp.Linker
)

func world(t testing.TB) (*kg.Graph, *kggen.Meta, *corpus.Corpus, *nlp.Linker) {
	t.Helper()
	once.Do(func() {
		tG, tMeta = kggen.MustGenerate(kggen.Tiny())
		tC = corpus.MustGenerate(tG, tMeta, corpus.Tiny())
		tLink = nlp.NewLinker(tG)
	})
	return tG, tMeta, tC, tLink
}

func allSearchers(t testing.TB) []Searcher {
	g, _, c, link := world(t)
	searchers := []Searcher{
		NewLucene(),
		NewBERT(),
		NewNewsLink(g, link),
		NewNewsLinkBERT(g, link),
	}
	for _, s := range searchers {
		if err := s.Index(c); err != nil {
			t.Fatalf("%s index: %v", s.Name(), err)
		}
	}
	return searchers
}

func topicQuery(t testing.TB, idx int) Query {
	g, meta, _, _ := world(t)
	topic := meta.Topics[idx]
	return Query{
		Text:     topic.Name + " " + g.Name(topic.GroupConcept),
		Concepts: []kg.NodeID{topic.Concept, topic.GroupConcept},
	}
}

func TestAllSearchersReturnResults(t *testing.T) {
	searchers := allSearchers(t)
	for _, s := range searchers {
		for idx := 0; idx < 6; idx++ {
			q := topicQuery(t, idx)
			res := s.Search(q, 10)
			if len(res) == 0 {
				t.Errorf("%s returned nothing for topic %d", s.Name(), idx)
				continue
			}
			for i := 1; i < len(res); i++ {
				if res[i].Score > res[i-1].Score {
					t.Errorf("%s results not sorted", s.Name())
					break
				}
			}
			if len(res) > 10 {
				t.Errorf("%s returned %d > k", s.Name(), len(res))
			}
		}
	}
}

func TestSearchersAreDeterministic(t *testing.T) {
	searchers := allSearchers(t)
	q := topicQuery(t, 0)
	for _, s := range searchers {
		a := s.Search(q, 5)
		b := s.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("%s lengths differ", s.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s result %d differs across calls", s.Name(), i)
			}
		}
	}
}

func TestRetrievalQuality(t *testing.T) {
	// Every method should put *some* on-topic documents into its top 5
	// on average — they are all real retrieval systems. (The relative
	// ordering of methods is established by the Table-I experiment, not
	// asserted here.)
	_, meta, c, _ := world(t)
	searchers := allSearchers(t)
	for _, s := range searchers {
		onTopic, total := 0, 0
		for idx, topic := range meta.Topics {
			for _, res := range s.Search(topicQuery(t, idx), 5) {
				total++
				if c.Doc(res.Doc).Gold(topic.Concept) >= 2.5 {
					onTopic++
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s returned nothing", s.Name())
		}
		// The hybrid inherits the deterministic embedder's limits (no
		// paraphrase generalisation), so its floor is lower; the paper's
		// real SBERT makes it far stronger.
		floor := 0.25
		if s.Name() == "NewsLink-BERT" {
			floor = 0.15
		}
		if frac := float64(onTopic) / float64(total); frac < floor {
			t.Errorf("%s retrieves only %.0f%% on-topic docs", s.Name(), frac*100)
		}
	}
}

func TestLuceneScore(t *testing.T) {
	_, _, c, _ := world(t)
	l := NewLucene()
	if err := l.Index(c); err != nil {
		t.Fatal(err)
	}
	q := topicQuery(t, 0)
	res := l.Search(q, 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if got := l.Score(q.Text, res[0].Doc); got != res[0].Score {
		t.Errorf("Score() = %v, want %v", got, res[0].Score)
	}
	// A document that shares no terms scores 0.
	if got := l.Score("zzzqqqxxx", res[0].Doc); got != 0 {
		t.Errorf("nonsense query score = %v", got)
	}
}

func TestNewsLinkExpansion(t *testing.T) {
	g, _, _, link := world(t)
	nl := NewNewsLink(g, link)
	ftx := g.MustLookup("FTX")
	binance := g.MustLookup("Binance")
	nodes := nl.Expand([]kg.NodeID{ftx, binance})
	set := map[kg.NodeID]struct{}{}
	for _, v := range nodes {
		set[v] = struct{}{}
	}
	if _, ok := set[ftx]; !ok {
		t.Error("seeds must be in expansion")
	}
	// FTX and Binance share the neighbour Coinbase (curated edge set),
	// which is exactly the "hidden related node" NewsLink adds.
	coinbase := g.MustLookup("Coinbase")
	if _, ok := set[coinbase]; !ok {
		t.Error("common neighbour Coinbase missing from expansion")
	}
	// Direct concepts appear too.
	be := g.MustLookup("Bitcoin exchange")
	if _, ok := set[be]; !ok {
		t.Error("seed concept missing from expansion")
	}
	if len(nodes) > 48 {
		t.Errorf("expansion size %d exceeds cap", len(nodes))
	}
}

func TestNewsLinkQueryExpansionIncludesConcepts(t *testing.T) {
	g, meta, _, link := world(t)
	nl := NewNewsLink(g, link)
	topic := meta.Topics[0]
	nodes := nl.ExpandQuery([]kg.NodeID{topic.Concept, topic.GroupConcept})
	found := false
	for _, v := range nodes {
		if v == topic.Concept {
			found = true
		}
	}
	if !found {
		t.Error("query concept missing from its own expansion")
	}
}

func TestDistractorsPolluteEmbeddings(t *testing.T) {
	// The paper observes that pure-embedding retrieval surfaces daily
	// price/volume reports. Verify the effect direction: BERT's top-10
	// contains at least as many distractors as NewsLink's top-10 summed
	// over topics (they share no mechanism, so this is a corpus
	// property surfacing through dense retrieval).
	_, _, c, _ := world(t)
	searchers := allSearchers(t)
	count := func(s Searcher) int {
		n := 0
		for idx := 0; idx < 6; idx++ {
			for _, res := range s.Search(topicQuery(t, idx), 10) {
				if c.Doc(res.Doc).Distractor {
					n++
				}
			}
		}
		return n
	}
	var bert, lucene int
	for _, s := range searchers {
		switch s.Name() {
		case "BERT":
			bert = count(s)
		case "Lucene":
			lucene = count(s)
		}
	}
	t.Logf("distractors in top-10s: bert=%d lucene=%d", bert, lucene)
	// Both keyword and embedding methods may surface distractors; the
	// assertion is only that the corpus actually produces the hazard.
	if bert+lucene == 0 {
		t.Skip("no distractors retrieved at this corpus size")
	}
}

func BenchmarkLuceneSearch(b *testing.B) {
	_, _, c, _ := world(b)
	l := NewLucene()
	if err := l.Index(c); err != nil {
		b.Fatal(err)
	}
	q := topicQuery(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Search(q, 10)
	}
}

func BenchmarkNewsLinkSearch(b *testing.B) {
	g, _, c, link := world(b)
	nl := NewNewsLink(g, link)
	if err := nl.Index(c); err != nil {
		b.Fatal(err)
	}
	q := topicQuery(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl.Search(q, 10)
	}
}
