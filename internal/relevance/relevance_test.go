package relevance

import (
	"math"
	"testing"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/xrand"
)

// fakeView is a hand-built DocView.
type fakeView struct {
	entities map[int32][]kg.NodeID
	weights  map[int32]map[kg.NodeID]float64
}

func (f *fakeView) Entities(doc int32) []kg.NodeID { return f.entities[doc] }
func (f *fakeView) EntityWeight(v kg.NodeID, doc int32) float64 {
	return f.weights[doc][v]
}
func (f *fakeView) ContextWeight(v kg.NodeID, doc int32) float64 {
	return f.weights[doc][v]
}

// testWorld builds:
//
//	concepts: Broad ← Narrow ; Other
//	instances: ftx, binance ∈ Narrow; court ∈ Other; nowhere ∈ Other
//	edges: ftx—court, binance—court (so court is 1 hop from the
//	Narrow extent), nowhere isolated.
//	doc 0: {ftx, court};  doc 1: {court, nowhere};  doc 2: {binance}
func testWorld(t testing.TB) (*kg.Graph, *fakeView, map[string]kg.NodeID) {
	t.Helper()
	b := kg.NewBuilder()
	ids := map[string]kg.NodeID{}
	ids["Broad"] = b.AddConcept("Broad")
	ids["Narrow"] = b.AddConcept("Narrow")
	ids["Other"] = b.AddConcept("Other")
	b.AddBroader(ids["Narrow"], ids["Broad"])
	for _, n := range []string{"ftx", "binance", "court", "nowhere"} {
		ids[n] = b.AddInstance(n)
	}
	b.AddType(ids["ftx"], ids["Narrow"])
	b.AddType(ids["binance"], ids["Narrow"])
	b.AddType(ids["court"], ids["Other"])
	b.AddType(ids["nowhere"], ids["Other"])
	b.AddInstanceEdge(ids["ftx"], ids["court"])
	b.AddInstanceEdge(ids["binance"], ids["court"])
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	view := &fakeView{
		entities: map[int32][]kg.NodeID{
			0: {ids["ftx"], ids["court"]},
			1: {ids["court"], ids["nowhere"]},
			2: {ids["binance"]},
		},
		weights: map[int32]map[kg.NodeID]float64{
			0: {ids["ftx"]: 0.8, ids["court"]: 0.3},
			1: {ids["court"]: 0.6, ids["nowhere"]: 0.2},
			2: {ids["binance"]: 0.9},
		},
	}
	return g, view, ids
}

func newScorer(g *kg.Graph, view DocView, exact bool) *Scorer {
	opts := Options{Tau: 2, Beta: 0.5, Samples: 2000, Exact: exact}
	var ix *reach.Index
	if !exact {
		ix = reach.New(g, 2, 0)
	}
	return NewScorer(g, view, ix, opts)
}

func TestMatchesViaClosure(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	// Narrow matches doc 0 directly; Broad matches through its child.
	if !s.Matches(ids["Narrow"], 0) {
		t.Error("Narrow should match doc 0")
	}
	if !s.Matches(ids["Broad"], 0) {
		t.Error("Broad should match doc 0 via closure")
	}
	if s.Matches(ids["Narrow"], 1) {
		t.Error("Narrow should not match doc 1")
	}
}

func TestSplit(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	matched, context := s.Split(ids["Narrow"], 0)
	if len(matched) != 1 || matched[0] != ids["ftx"] {
		t.Errorf("ME = %v", matched)
	}
	if len(context) != 1 || context[0] != ids["court"] {
		t.Errorf("CE = %v", context)
	}
}

func TestOntologyRel(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	// Narrow: |Ψ| = 2 of 4 instances ⇒ spec = log 2; pivot ftx (0.8).
	got, pivot := s.OntologyRel(ids["Narrow"], 0)
	want := math.Log(2) * 0.8
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cdro = %v, want %v", got, want)
	}
	if pivot != ids["ftx"] {
		t.Errorf("pivot = %v", pivot)
	}
	// No match ⇒ 0.
	if got, _ := s.OntologyRel(ids["Narrow"], 1); got != 0 {
		t.Errorf("unmatched cdro = %v", got)
	}
	// Other matches doc 1 twice: pivot must be the higher-weighted.
	_, pivot = s.OntologyRel(ids["Other"], 1)
	if pivot != ids["court"] {
		t.Errorf("pivot = %v, want court", pivot)
	}
}

func TestSpecificityPenalisesBroadConcepts(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	narrow, _ := s.OntologyRel(ids["Narrow"], 0)
	// Broad's direct extent is empty; its closure (= Narrow's extent)
	// backs the specificity, so it scores the same here — but a concept
	// with a *larger* closure must score lower. Use Other (2 instances,
	// same size) vs a synthetic comparison via doc 1.
	broad, _ := s.OntologyRel(ids["Broad"], 0)
	if broad > narrow+1e-12 {
		t.Errorf("Broad (%v) should not outscore Narrow (%v)", broad, narrow)
	}
}

func TestConnExact(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	// conn(Narrow, doc0): CE = {court}. S(Narrow, court):
	//   ftx: 1-hop path (β=0.5) + 2-hop ftx-?-court: ftx's only
	//        neighbour is court ⇒ none ⇒ 0.5
	//   binance: symmetric ⇒ 0.5
	//   wait: 2-hop ftx→binance? ftx—binance not an edge. So S = 1.0.
	got := s.Conn(ids["Narrow"], 0, nil)
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("conn = %v, want 1.0", got)
	}
	// cdrc = 1 - 1/(1+1) = 0.5
	if cdrc := s.ContextRel(ids["Narrow"], 0, nil); math.Abs(cdrc-0.5) > 1e-12 {
		t.Errorf("cdrc = %v, want 0.5", cdrc)
	}
}

func TestConnSampledAgreesWithExact(t *testing.T) {
	g, view, ids := testWorld(t)
	exact := newScorer(g, view, true)
	sampled := newScorer(g, view, false)
	rnd := xrand.New(42)
	for _, doc := range []int32{0, 1, 2} {
		for _, c := range []kg.NodeID{ids["Narrow"], ids["Broad"], ids["Other"]} {
			want := exact.Conn(c, doc, nil)
			got := sampled.Conn(c, doc, rnd)
			if want == 0 {
				if got != 0 {
					t.Errorf("doc %d concept %v: sampled %v, exact 0", doc, c, got)
				}
				continue
			}
			if math.Abs(got-want)/want > 0.15 {
				t.Errorf("doc %d concept %v: sampled %v vs exact %v", doc, c, got, want)
			}
		}
	}
}

func TestIsolatedContextGivesZeroConn(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	// doc 2 has only binance ∈ Narrow: no context entities at all.
	if got := s.Conn(ids["Narrow"], 2, nil); got != 0 {
		t.Errorf("conn with empty CE = %v", got)
	}
	// Other on doc 2: binance is context but Other's extent = {court,
	// nowhere}; S(Other, binance) = paths court→binance (1 hop) +
	// nowhere→binance (none) = 0.5.
	if got := s.Conn(ids["Other"], 2, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("conn = %v, want 0.5", got)
	}
}

func TestConnToScore(t *testing.T) {
	cases := map[float64]float64{0: 0, 1: 0.5, 3: 0.75, -2: 0}
	for in, want := range cases {
		if got := ConnToScore(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("ConnToScore(%v) = %v, want %v", in, got, want)
		}
	}
	if s := ConnToScore(1e12); s >= 1 {
		t.Error("score must stay below 1")
	}
}

func TestCDRAndRel(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	cdr, pivot := s.CDR(ids["Narrow"], 0, nil)
	want := math.Log(2) * 0.8 * 0.5
	if math.Abs(cdr-want) > 1e-12 {
		t.Errorf("cdr = %v, want %v", cdr, want)
	}
	if pivot != ids["ftx"] {
		t.Errorf("pivot = %v", pivot)
	}
	if cdr, _ := s.CDR(ids["Narrow"], 1, nil); cdr != 0 {
		t.Errorf("unmatched cdr = %v", cdr)
	}
	rel := s.Rel([]kg.NodeID{ids["Narrow"], ids["Other"]}, 0, nil)
	cdrOther, _ := s.CDR(ids["Other"], 0, nil)
	if math.Abs(rel-(want+cdrOther)) > 1e-12 {
		t.Errorf("rel = %v, want %v", rel, want+cdrOther)
	}
}

func TestMaxContextTruncation(t *testing.T) {
	// Build a doc with many context entities; MaxContext=2 must keep
	// the two highest-weighted.
	g, view, ids := testWorld(t)
	view.entities[3] = []kg.NodeID{ids["ftx"], ids["court"], ids["nowhere"], ids["binance"]}
	view.weights[3] = map[kg.NodeID]float64{
		ids["ftx"]: 0.9, ids["court"]: 0.8, ids["nowhere"]: 0.1, ids["binance"]: 0.7,
	}
	s := NewScorer(g, view, nil, Options{Tau: 2, Beta: 0.5, MaxContext: 1, Exact: true})
	// For concept Other on doc 3: ME = {court, nowhere}, CE = {ftx,
	// binance}; MaxContext=1 keeps ftx (0.9).
	// S(Other, ftx) = paths from {court, nowhere} to ftx ≤ 2 hops:
	// court-ftx (0.5) + court-binance-ftx? binance—ftx missing ⇒ 0.5.
	got := s.Conn(ids["Other"], 3, nil)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("truncated conn = %v, want 0.5", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tau != 2 || o.Beta != 0.5 || o.Samples != 50 || o.MaxContext != 8 || o.MaxExtent != 4000 {
		t.Errorf("defaults = %+v", o)
	}
}

func BenchmarkCDRSampled(b *testing.B) {
	g, view, ids := testWorld(b)
	s := NewScorer(g, view, reach.New(g, 2, 0), Options{Samples: 50})
	rnd := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CDR(ids["Narrow"], 0, rnd)
	}
}

// TestSplitScratchReuse pins the documented contract: Split's returned
// slices are scorer-owned scratch, overwritten by the next call and
// allocation-free in steady state.
func TestSplitScratchReuse(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	matched, _ := s.Split(ids["Narrow"], 0)
	if len(matched) != 1 || matched[0] != ids["ftx"] {
		t.Fatalf("ME = %v", matched)
	}
	s.Split(ids["Other"], 1) // overwrites the scratch
	if matched[0] == ids["ftx"] {
		t.Fatal("scratch was not reused — the zero-alloc contract is not exercised")
	}
	s.Split(ids["Narrow"], 0) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		s.Split(ids["Narrow"], 0)
	})
	if allocs != 0 {
		t.Fatalf("warm Split allocated %.1f/op", allocs)
	}
}

// TestConnCapSoundness: the closed-form cap must dominate conn for
// every (concept, doc) pair under both exact counting and sampling.
func TestConnCapSoundness(t *testing.T) {
	g, view, ids := testWorld(t)
	maxDeg := 0
	g.Instances(func(v kg.NodeID) bool {
		if d := g.InstanceDegree(v); d > maxDeg {
			maxDeg = d
		}
		return true
	})
	for _, exact := range []bool{true, false} {
		s := newScorer(g, view, exact)
		rnd := xrand.New(7)
		for _, c := range []string{"Broad", "Narrow", "Other"} {
			ext, _ := s.Extent(ids[c])
			cap := ConnCap(len(ext), maxDeg, s.Options().Tau, s.Options().Beta)
			for doc := int32(0); doc < 3; doc++ {
				if conn := s.Conn(ids[c], doc, rnd); conn > cap {
					t.Errorf("exact=%v concept %s doc %d: conn %v exceeds cap %v",
						exact, c, doc, conn, cap)
				}
			}
		}
	}
}

func TestConnCapClosedForm(t *testing.T) {
	// τ=2, β=0.5, Δ=3, |Ψ|=4: 4·(0.5·3 + 0.25·9) = 15.
	if got := ConnCap(4, 3, 2, 0.5); math.Abs(got-15) > 1e-12 {
		t.Fatalf("ConnCap = %v, want 15", got)
	}
	if got := ConnCap(0, 3, 2, 0.5); got != 0 {
		t.Fatalf("empty extent cap = %v, want 0", got)
	}
}

// TestSharedExtentCache: scorers sharing an ExtentCache see identical
// immutable extents.
func TestSharedExtentCache(t *testing.T) {
	g, view, ids := testWorld(t)
	cache := NewExtentCache(4)
	mk := func() *Scorer {
		return NewScorer(g, view, nil, Options{Exact: true, Extents: cache})
	}
	a, b := mk(), mk()
	listA, setA := a.Extent(ids["Broad"])
	listB, setB := b.Extent(ids["Broad"])
	if &listA[0] != &listB[0] {
		t.Fatal("shared cache returned distinct extent copies")
	}
	if len(setA) != len(setB) || len(listA) != len(setA) {
		t.Fatalf("set/list mismatch: %d/%d/%d", len(listA), len(setA), len(setB))
	}
}

func TestPairScoreMatchesConnParts(t *testing.T) {
	g, view, ids := testWorld(t)
	s := newScorer(g, view, true)
	ext, _ := s.Extent(ids["Narrow"])
	// court is 1 hop from both extent members: S = 2·β.
	if got := s.PairScore(ext, ids["court"], nil); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("PairScore = %v, want 1.0", got)
	}
}
