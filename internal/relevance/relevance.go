// Package relevance implements the paper's concept–document relevance
// model (§III-A):
//
//	cdr(c, d)  = cdro(c, d) · cdrc(c, d)                      (Eq. 2)
//	cdro(c, d) = log(|V_I| / |Ψ(c)|) · max_{v∈ME(c,d)} tw(v,d) (Eq. 3)
//	conn(c, d) = Σ_{v∈CE(c,d)} S(c, v) / |CE(c, d)|            (Eq. 4)
//	cdrc(c, d) = 1 − 1 / (1 + conn(c, d))                      (Eq. 5)
//
// where ME(c, d) are the document entities matching c under the
// ontology relation, CE(c, d) are the remaining (context) entities, and
// S(c, v) = Σ_{u∈Ψ(c)} Σ_{l≤τ} β^l |paths^⟨l⟩(u, v)| is the weighted
// path count estimated by internal/rw (or computed exactly by
// internal/paths for ground truth).
//
// Matching follows the paper's broad-concept rule: a concept matches a
// document through its extent *closure* (its own instances or those of
// any `narrower` descendant), and the specificity factor falls back to
// the closure size when the direct extent is empty — the "edge concept
// among its children" substitution.
package relevance

import (
	"ncexplorer/internal/kg"
	"ncexplorer/internal/paths"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/rw"
	"ncexplorer/internal/shardmap"
	"ncexplorer/internal/topk"
	"ncexplorer/internal/xrand"
)

// DocView supplies per-document entity statistics to the scorer. It is
// implemented by the engine's document store.
type DocView interface {
	// Entities returns the distinct linked entities of a document.
	Entities(doc int32) []kg.NodeID
	// EntityWeight returns tw(v, d) ∈ [0, 1], the textual importance of
	// entity v in document d (TF-IDF in the default pipeline). It may
	// depend on corpus-global statistics (IDF) and therefore change as
	// the corpus grows.
	EntityWeight(v kg.NodeID, doc int32) float64
	// ContextWeight ranks a document's entities for context-set
	// truncation (Eq. 4's CE cap). Unlike EntityWeight it must depend
	// only on the document itself (the default pipeline uses the
	// saturated term frequency tf/(tf+1)), never on corpus-global
	// statistics: the selected context set — and with it the expensive
	// connectivity estimate — is then a pure function of (concept,
	// document) and can be memoised once and reused across index
	// generations as the corpus grows.
	ContextWeight(v kg.NodeID, doc int32) float64
}

// Options configures a Scorer. Zero values select the paper's defaults.
type Options struct {
	// Tau is the hop constraint τ (paper default 2).
	Tau int
	// Beta is the path-length damping factor β (paper default 0.5).
	Beta float64
	// Samples is the number of random walks per (concept, context
	// entity) pair (paper default 50).
	Samples int
	// MaxContext caps how many context entities are averaged in Eq. 4;
	// the highest-weighted entities are kept. 0 ⇒ 8.
	MaxContext int
	// MaxExtent caps the concept extent used for matching and walking
	// (closure truncation for enormous concepts). 0 ⇒ 4000.
	MaxExtent int
	// Exact forces exact path counting instead of sampling.
	Exact bool
	// Extents, when non-nil, is a concurrency-safe extent cache shared
	// across scorers (create with NewExtentCache), so a fleet of pooled
	// workers computes each concept's extent closure once instead of
	// once per scorer. Scorers sharing a cache must use the same
	// MaxExtent. When nil, the scorer keeps a private memo.
	Extents *ExtentCache
}

func (o Options) withDefaults() Options {
	if o.Tau <= 0 {
		o.Tau = 2
	}
	if o.Beta <= 0 {
		o.Beta = 0.5
	}
	if o.Samples <= 0 {
		o.Samples = 50
	}
	if o.MaxContext <= 0 {
		o.MaxContext = 8
	}
	if o.MaxExtent <= 0 {
		o.MaxExtent = 4000
	}
	return o
}

// Scorer computes cdr and its components.
//
// Concurrency contract (the scorer-per-worker rule): a Scorer is NOT
// safe for concurrent use — it owns random-walk scratch buffers and an
// extent memo table. Create one per worker goroutine, or pool them
// (sync.Pool) and borrow for the duration of a computation, as the
// engine's query path does. Two scorers over the same graph are fully
// independent and may run in parallel; the graph, DocView, and
// reach.Index they share must themselves be safe for concurrent reads
// (kg.Graph and reach.Index are; the engine's DocView is immutable
// after indexing).
//
// Values a Scorer *returns* are a different matter: Extent results are
// immutable shared slices that remain valid and safe to read after the
// scorer is released to another goroutine — see Extent.
type Scorer struct {
	g    *kg.Graph
	view DocView
	opts Options

	est     *rw.Estimator
	counter *paths.Counter

	extents map[kg.NodeID]extentEntry

	// Scratch reused across calls (part of the zero-alloc warm path):
	// Split's result slices and Conn's context-truncation collector.
	matchedBuf []kg.NodeID
	contextBuf []kg.NodeID
	ctxColl    *topk.Collector[kg.NodeID]
	ctxKeep    []kg.NodeID
}

type extentEntry struct {
	list []kg.NodeID
	set  map[kg.NodeID]struct{}
}

// ExtentCache is a concurrency-safe memo of concept extent closures,
// shareable by any number of scorers (per-shard singleflight: N
// scorers missing the same concept compute its closure once). Entries
// are immutable once stored. Construct with NewExtentCache and hand it
// to scorers via Options.Extents.
type ExtentCache struct {
	m *shardmap.Map[kg.NodeID, extentEntry]
}

// NewExtentCache returns an empty shared extent cache.
func NewExtentCache(shards int) *ExtentCache {
	return &ExtentCache{m: shardmap.New[kg.NodeID, extentEntry](shards, func(c kg.NodeID) uint64 {
		return shardmap.Mix64(uint64(uint32(c)))
	})}
}

// NewScorer builds a scorer. index may be nil (unguided walks); it is
// ignored when opts.Exact is set.
func NewScorer(g *kg.Graph, view DocView, index *reach.Index, opts Options) *Scorer {
	opts = opts.withDefaults()
	s := &Scorer{
		g: g, view: view, opts: opts,
		extents: make(map[kg.NodeID]extentEntry),
	}
	if opts.Exact {
		s.counter = paths.NewCounter(g)
	} else {
		s.est = rw.New(g, index, opts.Tau, opts.Beta)
	}
	return s
}

// Options returns the effective (defaulted) options.
func (s *Scorer) Options() Options { return s.opts }

// Extent returns the matching extent of c — the capped extent closure —
// as both list and set. Both are immutable shared views: the scorer
// never mutates a memoised entry after creating it and callers must
// not modify them either, so the returned slice and set may be
// retained, shared across goroutines, and read after the scorer has
// been handed to another worker.
func (s *Scorer) Extent(c kg.NodeID) ([]kg.NodeID, map[kg.NodeID]struct{}) {
	if s.opts.Extents != nil {
		e, _ := s.opts.Extents.m.GetOrCompute(c, func() extentEntry { return s.buildExtent(c) })
		return e.list, e.set
	}
	if e, ok := s.extents[c]; ok {
		return e.list, e.set
	}
	e := s.buildExtent(c)
	s.extents[c] = e
	return e.list, e.set
}

// buildExtent computes the capped extent closure of c. Pure: depends
// only on the immutable graph and MaxExtent.
func (s *Scorer) buildExtent(c kg.NodeID) extentEntry {
	list := s.g.ExtentClosure(c, 0)
	if len(list) > s.opts.MaxExtent {
		list = list[:s.opts.MaxExtent]
	}
	set := make(map[kg.NodeID]struct{}, len(list))
	for _, v := range list {
		set[v] = struct{}{}
	}
	return extentEntry{list: list, set: set}
}

// Matches reports whether document doc contains an entity matching c.
func (s *Scorer) Matches(c kg.NodeID, doc int32) bool {
	_, set := s.Extent(c)
	for _, v := range s.view.Entities(doc) {
		if _, ok := set[v]; ok {
			return true
		}
	}
	return false
}

// Split partitions a document's entities into ME(c, d) and CE(c, d).
// The returned slices are scorer-owned scratch: they are valid until
// the next Split call on this scorer and must not be retained.
func (s *Scorer) Split(c kg.NodeID, doc int32) (matched, context []kg.NodeID) {
	_, set := s.Extent(c)
	matched, context = s.matchedBuf[:0], s.contextBuf[:0]
	for _, v := range s.view.Entities(doc) {
		if _, ok := set[v]; ok {
			matched = append(matched, v)
		} else {
			context = append(context, v)
		}
	}
	s.matchedBuf, s.contextBuf = matched, context
	return matched, context
}

// OntologyRel computes cdro(c, d) (Eq. 3) and returns the pivot entity
// (the matched entity with the highest term weight). Returns (0,
// InvalidNode) when the concept does not match the document.
func (s *Scorer) OntologyRel(c kg.NodeID, doc int32) (float64, kg.NodeID) {
	matched, _ := s.Split(c, doc)
	if len(matched) == 0 {
		return 0, kg.InvalidNode
	}
	pivot := kg.InvalidNode
	best := -1.0
	for _, v := range matched {
		if w := s.view.EntityWeight(v, doc); w > best {
			best = w
			pivot = v
		}
	}
	return s.g.Specificity(c) * best, pivot
}

// Conn computes conn(c, d) (Eq. 4). rnd drives the sampling estimator;
// it is ignored in exact mode. Context entities beyond MaxContext are
// truncated to the highest-ranked ones under the view's ContextWeight
// (deterministic, and document-local by the DocView contract — so the
// same (concept, document) pair always walks the same context set, no
// matter how large the surrounding corpus has grown).
func (s *Scorer) Conn(c kg.NodeID, doc int32, rnd *xrand.Rand) float64 {
	_, context := s.Split(c, doc)
	if len(context) == 0 {
		return 0
	}
	if len(context) > s.opts.MaxContext {
		if s.ctxColl == nil {
			s.ctxColl = topk.New[kg.NodeID](s.opts.MaxContext)
		} else {
			s.ctxColl.Reset(s.opts.MaxContext)
		}
		for _, v := range context {
			s.ctxColl.Push(v, s.view.ContextWeight(v, doc))
		}
		s.ctxKeep = s.ctxColl.AppendValues(s.ctxKeep[:0])
		context = s.ctxKeep
	}
	ext, _ := s.Extent(c)
	if len(ext) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range context {
		sum += s.pairScore(ext, v, rnd)
	}
	return sum / float64(len(context))
}

// PairScore computes S(c, v) — the weighted path count between a
// concept extent and a single context entity — exactly or by sampling
// according to the scorer's options (rnd may be nil in exact mode).
func (s *Scorer) PairScore(ext []kg.NodeID, v kg.NodeID, rnd *xrand.Rand) float64 {
	return s.pairScore(ext, v, rnd)
}

// pairScore computes S(c, v) for one context entity.
func (s *Scorer) pairScore(ext []kg.NodeID, v kg.NodeID, rnd *xrand.Rand) float64 {
	if s.opts.Exact {
		total := 0.0
		for _, u := range ext {
			total += s.counter.WeightedCount(u, v, s.opts.Tau, s.opts.Beta)
		}
		return total
	}
	return s.est.EstimateConcept(rnd, ext, v, s.opts.Samples)
}

// ContextRel computes cdrc(c, d) (Eq. 5), normalising conn to [0, 1).
func (s *Scorer) ContextRel(c kg.NodeID, doc int32, rnd *xrand.Rand) float64 {
	return ConnToScore(s.Conn(c, doc, rnd))
}

// ConnCap returns a proven upper bound on conn(c, d) for ANY document,
// given the concept's (capped) extent size and the maximum instance
// degree of the graph:
//
//	conn(c, d) = Σ_{v∈CE} S(c, v) / |CE| ≤ max_v S(c, v)
//	S(c, v)    = Σ_{u∈Ψ(c)} Σ_{l≤τ} β^l |paths^⟨l⟩(u, v)|
//	           ≤ |Ψ(c)| · Σ_{l=1..τ} β^l Δ^l
//
// since a node has at most Δ^l distinct l-hop paths leaving it (each
// step picks one of ≤ Δ neighbours). The sampling estimator obeys the
// same bound sample-by-sample: a walk's value is β^l·Π N(u_i) with
// every branching factor N(u_i) ≤ Δ, scaled by a pool size ≤ |Ψ(c)|,
// so neither exact counting nor sampling can exceed the cap.
func ConnCap(extentSize, maxDegree, tau int, beta float64) float64 {
	cap := 0.0
	step := 1.0
	for l := 1; l <= tau; l++ {
		step *= beta * float64(maxDegree)
		cap += step
	}
	return cap * float64(extentSize)
}

// ConnToScore maps a connectivity value to the normalised context
// relevance: 1 − 1/(1+conn).
func ConnToScore(conn float64) float64 {
	if conn < 0 {
		conn = 0
	}
	return 1 - 1/(1+conn)
}

// CDR computes cdr(c, d) = cdro · cdrc (Eq. 2) and the pivot entity.
// A concept that does not match the document scores 0.
func (s *Scorer) CDR(c kg.NodeID, doc int32, rnd *xrand.Rand) (float64, kg.NodeID) {
	cdro, pivot := s.OntologyRel(c, doc)
	if cdro <= 0 {
		return 0, pivot
	}
	return cdro * s.ContextRel(c, doc, rnd), pivot
}

// Rel computes rel(Q, d) = Σ_{c∈Q} cdr(c, d) (Eq. 1) for a document
// known to match every concept in Q; concepts that do not match
// contribute 0, so callers enforcing full-match semantics should check
// Matches first.
func (s *Scorer) Rel(q []kg.NodeID, doc int32, rnd *xrand.Rand) float64 {
	total := 0.0
	for _, c := range q {
		cdr, _ := s.CDR(c, doc, rnd)
		total += cdr
	}
	return total
}
