package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"ncexplorer/internal/xrand"
)

func TestBasicTopK(t *testing.T) {
	c := New[string](3)
	c.Push("a", 1)
	c.Push("b", 5)
	c.Push("c", 3)
	c.Push("d", 4)
	c.Push("e", 0.5)
	got := c.Values()
	want := []string{"b", "d", "c"}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFewerThanK(t *testing.T) {
	c := New[int](10)
	c.Push(1, 1)
	c.Push(2, 2)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Threshold(); ok {
		t.Fatal("threshold should be unavailable under k items")
	}
	got := c.Values()
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestThreshold(t *testing.T) {
	c := New[int](2)
	c.Push(1, 10)
	c.Push(2, 20)
	th, ok := c.Threshold()
	if !ok || th != 10 {
		t.Fatalf("threshold = %v, %v", th, ok)
	}
	c.Push(3, 15)
	th, _ = c.Threshold()
	if th != 15 {
		t.Fatalf("threshold after push = %v", th)
	}
}

func TestTieBreakEarliestWins(t *testing.T) {
	c := New[int](2)
	c.Push(1, 5)
	c.Push(2, 5)
	c.Push(3, 5) // same score, must NOT displace earlier items
	got := c.Values()
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("ties broken wrongly: %v", got)
	}
}

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](0)
}

// Property: Values() equals the k largest of the pushed scores, sorted
// descending.
func TestMatchesSortReference(t *testing.T) {
	err := quick.Check(func(seed uint64, kRaw uint8, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw) + 1
		r := xrand.New(seed)
		c := New[int](k)
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = float64(r.Intn(50)) // collisions likely
			c.Push(i, scores[i])
		}
		ref := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
		got := c.Sorted()
		m := k
		if n < k {
			m = n
		}
		if len(got) != m {
			return false
		}
		for i := 0; i < m; i++ {
			if got[i].Score != ref[i] {
				return false
			}
		}
		// Descending order invariant.
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkPush(b *testing.B) {
	r := xrand.New(1)
	c := New[int](10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Push(i, r.Float64())
	}
}
