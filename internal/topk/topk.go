// Package topk provides a bounded top-k collector used by every ranking
// component (BM25 search, vector search, roll-up and drill-down). It is
// a size-k min-heap on score with deterministic tie-breaking: among
// equal scores, the earliest-pushed item wins. Determinism matters
// because experiment tables must be byte-stable across runs.
package topk

import "slices"

// Item is a collected value with its score.
type Item[T any] struct {
	Value T
	Score float64
	seq   int64
}

// Collector keeps the k highest-scoring items pushed into it.
type Collector[T any] struct {
	k       int
	next    int64
	items   []Item[T] // min-heap on (score asc, seq desc)
	scratch []Item[T] // reused by AppendValues
}

// cmpItems orders items by (score desc, seq asc); seqs are distinct, so
// the order is total and any sort algorithm yields the same result.
func cmpItems[T any](a, b Item[T]) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// New returns a collector for the k best items. k must be positive.
func New[T any](k int) *Collector[T] {
	if k <= 0 {
		panic("topk: non-positive k")
	}
	return &Collector[T]{k: k, items: make([]Item[T], 0, k)}
}

// less orders the heap: the item that should be evicted first is the
// one with the lowest score; among equal scores, the latest-pushed.
func (c *Collector[T]) less(i, j int) bool {
	a, b := c.items[i], c.items[j]
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.seq > b.seq
}

// Push offers an item; it is retained only if it beats the current kth
// best (ties favour earlier pushes).
func (c *Collector[T]) Push(v T, score float64) {
	it := Item[T]{Value: v, Score: score, seq: c.next}
	c.next++
	if len(c.items) < c.k {
		c.items = append(c.items, it)
		c.up(len(c.items) - 1)
		return
	}
	root := c.items[0]
	if score < root.Score || (score == root.Score && it.seq > root.seq) {
		return
	}
	c.items[0] = it
	c.down(0)
}

// Len returns the number of retained items (≤ k).
func (c *Collector[T]) Len() int { return len(c.items) }

// Threshold returns the lowest retained score, or -Inf semantics via
// ok=false when fewer than k items are retained. Useful for pruning.
func (c *Collector[T]) Threshold() (float64, bool) {
	if len(c.items) < c.k {
		return 0, false
	}
	return c.items[0].Score, true
}

// Sorted returns the retained items in descending score order (ties:
// earliest push first). The collector remains usable afterwards.
func (c *Collector[T]) Sorted() []Item[T] {
	return c.AppendSorted(nil)
}

// AppendSorted appends the retained items to dst in descending score
// order (ties: earliest push first) and returns the extended slice.
// With sufficient capacity in dst it performs no allocation. The
// collector remains usable afterwards.
func (c *Collector[T]) AppendSorted(dst []Item[T]) []Item[T] {
	base := len(dst)
	dst = append(dst, c.items...)
	slices.SortFunc(dst[base:], cmpItems[T])
	return dst
}

// Values returns just the values of Sorted().
func (c *Collector[T]) Values() []T {
	items := c.Sorted()
	out := make([]T, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out
}

// AppendValues appends just the values of Sorted() to dst, reusing the
// collector's internal scratch so that with sufficient capacity in dst
// it performs no allocation.
func (c *Collector[T]) AppendValues(dst []T) []T {
	c.scratch = c.AppendSorted(c.scratch[:0])
	for _, it := range c.scratch {
		dst = append(dst, it.Value)
	}
	return dst
}

// Reset empties the collector and re-arms it for k items, retaining the
// backing array so steady-state reuse allocates nothing once capacity
// has grown to the largest k seen. k must be positive.
func (c *Collector[T]) Reset(k int) {
	if k <= 0 {
		panic("topk: non-positive k")
	}
	c.k = k
	c.next = 0
	c.items = c.items[:0]
}

func (c *Collector[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.items[i], c.items[parent] = c.items[parent], c.items[i]
		i = parent
	}
}

func (c *Collector[T]) down(i int) {
	n := len(c.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.items[i], c.items[smallest] = c.items[smallest], c.items[i]
		i = smallest
	}
}

// KeyedItem is a collected value with its score and an explicit
// tie-breaking key.
type KeyedItem[T any] struct {
	Value T
	Score float64
	Key   int64
}

// Keyed keeps the k highest-scoring items pushed into it, breaking
// score ties by the smallest explicit key instead of push order. That
// makes the retained set independent of push order, which is what a
// pruned scan needs: it visits candidates in ceiling order, not
// document order, yet must retain exactly the items an exhaustive
// ascending-order scan would. When keys are the ascending positions of
// an exhaustive scan, Keyed and Collector retain identical sets in
// identical Sorted order.
type Keyed[T any] struct {
	k     int
	items []KeyedItem[T] // min-heap on (score asc, key desc)
}

// cmpKeyedItems orders items by (score desc, key asc); keys are
// distinct, so the order is total.
func cmpKeyedItems[T any](a, b KeyedItem[T]) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	}
	return 0
}

// NewKeyed returns a keyed collector for the k best items. k must be
// positive.
func NewKeyed[T any](k int) *Keyed[T] {
	if k <= 0 {
		panic("topk: non-positive k")
	}
	return &Keyed[T]{k: k, items: make([]KeyedItem[T], 0, k)}
}

// Reset empties the collector and re-arms it for k items, retaining
// the backing array. k must be positive.
func (c *Keyed[T]) Reset(k int) {
	if k <= 0 {
		panic("topk: non-positive k")
	}
	c.k = k
	c.items = c.items[:0]
}

// less orders the heap: evict-first is the lowest score; among equal
// scores, the largest key.
func (c *Keyed[T]) less(i, j int) bool {
	a, b := c.items[i], c.items[j]
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Key > b.Key
}

// Push offers an item; it is retained only if it beats the current kth
// best (ties favour the smaller key). Keys must be distinct across
// pushes for the order-independence guarantee to hold.
func (c *Keyed[T]) Push(v T, key int64, score float64) {
	it := KeyedItem[T]{Value: v, Score: score, Key: key}
	if len(c.items) < c.k {
		c.items = append(c.items, it)
		c.up(len(c.items) - 1)
		return
	}
	root := c.items[0]
	if score < root.Score || (score == root.Score && key > root.Key) {
		return
	}
	c.items[0] = it
	c.down(0)
}

// Len returns the number of retained items (≤ k).
func (c *Keyed[T]) Len() int { return len(c.items) }

// Threshold returns the lowest retained score, with ok=false when
// fewer than k items are retained. A candidate block whose score
// ceiling is strictly below the threshold cannot change the retained
// set; at equality it still can (a smaller key evicts at equal score),
// so pruning must compare strictly.
func (c *Keyed[T]) Threshold() (float64, bool) {
	if len(c.items) < c.k {
		return 0, false
	}
	return c.items[0].Score, true
}

// AppendSorted appends the retained items to dst in descending score
// order (ties: smallest key first) and returns the extended slice.
// With sufficient capacity in dst it performs no allocation. The
// collector remains usable afterwards.
func (c *Keyed[T]) AppendSorted(dst []KeyedItem[T]) []KeyedItem[T] {
	base := len(dst)
	dst = append(dst, c.items...)
	slices.SortFunc(dst[base:], cmpKeyedItems[T])
	return dst
}

func (c *Keyed[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.items[i], c.items[parent] = c.items[parent], c.items[i]
		i = parent
	}
}

func (c *Keyed[T]) down(i int) {
	n := len(c.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.items[i], c.items[smallest] = c.items[smallest], c.items[i]
		i = smallest
	}
}
