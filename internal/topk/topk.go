// Package topk provides a bounded top-k collector used by every ranking
// component (BM25 search, vector search, roll-up and drill-down). It is
// a size-k min-heap on score with deterministic tie-breaking: among
// equal scores, the earliest-pushed item wins. Determinism matters
// because experiment tables must be byte-stable across runs.
package topk

import "sort"

// Item is a collected value with its score.
type Item[T any] struct {
	Value T
	Score float64
	seq   int64
}

// Collector keeps the k highest-scoring items pushed into it.
type Collector[T any] struct {
	k     int
	next  int64
	items []Item[T] // min-heap on (score asc, seq desc)
}

// New returns a collector for the k best items. k must be positive.
func New[T any](k int) *Collector[T] {
	if k <= 0 {
		panic("topk: non-positive k")
	}
	return &Collector[T]{k: k, items: make([]Item[T], 0, k)}
}

// less orders the heap: the item that should be evicted first is the
// one with the lowest score; among equal scores, the latest-pushed.
func (c *Collector[T]) less(i, j int) bool {
	a, b := c.items[i], c.items[j]
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.seq > b.seq
}

// Push offers an item; it is retained only if it beats the current kth
// best (ties favour earlier pushes).
func (c *Collector[T]) Push(v T, score float64) {
	it := Item[T]{Value: v, Score: score, seq: c.next}
	c.next++
	if len(c.items) < c.k {
		c.items = append(c.items, it)
		c.up(len(c.items) - 1)
		return
	}
	root := c.items[0]
	if score < root.Score || (score == root.Score && it.seq > root.seq) {
		return
	}
	c.items[0] = it
	c.down(0)
}

// Len returns the number of retained items (≤ k).
func (c *Collector[T]) Len() int { return len(c.items) }

// Threshold returns the lowest retained score, or -Inf semantics via
// ok=false when fewer than k items are retained. Useful for pruning.
func (c *Collector[T]) Threshold() (float64, bool) {
	if len(c.items) < c.k {
		return 0, false
	}
	return c.items[0].Score, true
}

// Sorted returns the retained items in descending score order (ties:
// earliest push first). The collector remains usable afterwards.
func (c *Collector[T]) Sorted() []Item[T] {
	out := make([]Item[T], len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Values returns just the values of Sorted().
func (c *Collector[T]) Values() []T {
	items := c.Sorted()
	out := make([]T, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out
}

func (c *Collector[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.items[i], c.items[parent] = c.items[parent], c.items[i]
		i = parent
	}
}

func (c *Collector[T]) down(i int) {
	n := len(c.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.items[i], c.items[smallest] = c.items[smallest], c.items[i]
		i = smallest
	}
}
