package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func cmpInt(a, b int) int { return a - b }

func TestMergeSorted(t *testing.T) {
	lists := [][]int{{1, 4, 9}, {2, 3, 10}, {}, {5}}
	if got := MergeSorted(lists, cmpInt, 4); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("prefix merge = %v", got)
	}
	if got := MergeSorted(lists, cmpInt, -1); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5, 9, 10}) {
		t.Fatalf("full merge = %v", got)
	}
	if got := MergeSorted(lists, cmpInt, 100); len(got) != 7 {
		t.Fatalf("over-asked merge returned %d items", len(got))
	}
	if got := MergeSorted(nil, cmpInt, 3); len(got) != 0 {
		t.Fatalf("empty input merged to %v", got)
	}
}

// TestMergeSortedRandom cross-checks the k-way merge against sort over
// the concatenation: partition a random multiset into sorted lists and
// every merged prefix must equal the globally sorted prefix.
func TestMergeSortedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nLists := 1 + rng.Intn(5)
		lists := make([][]int, nLists)
		var all []int
		for i := range lists {
			for j := 0; j < rng.Intn(20); j++ {
				v := rng.Intn(40)
				lists[i] = append(lists[i], v)
				all = append(all, v)
			}
			sort.Ints(lists[i])
		}
		sort.Ints(all)
		for _, k := range []int{0, 1, 3, len(all), len(all) + 5, -1} {
			want := all
			if k >= 0 && k < len(all) {
				want = all[:k]
			}
			got := MergeSorted(lists, cmpInt, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d: merged %v want %v", trial, k, got, want)
			}
		}
	}
}
