package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"ncexplorer/internal/xrand"
)

// Property: a Keyed collector fed the same (value, score) stream in ANY
// order — with keys equal to each item's position in the canonical
// ascending order — retains exactly what a plain Collector retains when
// pushed in that canonical order, in the same Sorted order. This is the
// order-independence guarantee the pruned scan relies on.
func TestKeyedMatchesSeqCollector(t *testing.T) {
	err := quick.Check(func(seed uint64, kRaw uint8, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw) + 1
		r := xrand.New(seed)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(r.Intn(8)) // force heavy collisions
		}
		ref := New[int](k)
		for i, s := range scores {
			ref.Push(i, s)
		}
		perm := r.Perm(n)
		got := NewKeyed[int](k)
		for _, i := range perm {
			got.Push(i, int64(i), scores[i])
		}
		want := ref.Sorted()
		have := got.AppendSorted(nil)
		if len(want) != len(have) {
			return false
		}
		for i := range want {
			if want[i].Value != have[i].Value || want[i].Score != have[i].Score {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestKeyedTieEvictsLargerKey(t *testing.T) {
	c := NewKeyed[string](2)
	c.Push("late", 10, 5)
	c.Push("mid", 5, 5)
	// Equal score, smaller key: must evict the largest retained key.
	c.Push("early", 1, 5)
	items := c.AppendSorted(nil)
	if items[0].Value != "early" || items[1].Value != "mid" {
		t.Fatalf("tie eviction wrong: %+v", items)
	}
	// Equal score, larger key than the root: must be rejected.
	c.Push("later", 20, 5)
	items = c.AppendSorted(items[:0])
	if items[0].Value != "early" || items[1].Value != "mid" {
		t.Fatalf("equal-score larger key displaced an item: %+v", items)
	}
}

func TestKeyedThresholdAndReset(t *testing.T) {
	c := NewKeyed[int](2)
	if _, ok := c.Threshold(); ok {
		t.Fatal("threshold available on empty collector")
	}
	c.Push(1, 1, 3)
	c.Push(2, 2, 7)
	th, ok := c.Threshold()
	if !ok || th != 3 {
		t.Fatalf("threshold = %v, %v", th, ok)
	}
	c.Reset(1)
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
	c.Push(3, 3, 1)
	c.Push(4, 4, 2)
	items := c.AppendSorted(nil)
	if len(items) != 1 || items[0].Value != 4 {
		t.Fatalf("post-reset contents: %+v", items)
	}
}

func TestKeyedPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKeyed[int](0)
}

func TestKeyedResetPanicsOnBadK(t *testing.T) {
	c := NewKeyed[int](1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Reset(-1)
}

func TestCollectorResetReuse(t *testing.T) {
	c := New[int](3)
	c.Push(1, 1)
	c.Push(2, 2)
	c.Reset(2)
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
	// seq restarts: tie-breaking must behave like a fresh collector.
	c.Push(10, 5)
	c.Push(11, 5)
	c.Push(12, 5)
	got := c.Values()
	if got[0] != 10 || got[1] != 11 {
		t.Fatalf("post-reset ties: %v", got)
	}
}

func TestCollectorResetPanicsOnBadK(t *testing.T) {
	c := New[int](1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Reset(0)
}

func TestAppendValuesNoAlloc(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 32; i++ {
		c.Push(i, float64(i%5))
	}
	dst := make([]int, 0, 8)
	c.AppendValues(dst) // warm the internal scratch
	allocs := testing.AllocsPerRun(100, func() {
		dst = c.AppendValues(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendValues allocated %.1f/op", allocs)
	}
	want := c.Values()
	if len(dst) != len(want) {
		t.Fatalf("len %d vs %d", len(dst), len(want))
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AppendValues diverges from Values at %d: %v vs %v", i, dst, want)
		}
	}
}

func TestKeyedSortOrder(t *testing.T) {
	r := xrand.New(7)
	c := NewKeyed[int](16)
	for i := 0; i < 64; i++ {
		c.Push(i, int64(i), float64(r.Intn(4)))
	}
	items := c.AppendSorted(nil)
	if !sort.SliceIsSorted(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score > items[j].Score
		}
		return items[i].Key < items[j].Key
	}) {
		t.Fatalf("AppendSorted order violated: %+v", items)
	}
}
