package topk

// MergeSorted is the exact cross-shard merge primitive: a k-way merge
// of lists that are each already sorted by cmp (negative when a orders
// before b), returning the first k items of the merged order — all of
// them when k < 0 or k exceeds the total.
//
// Exactness argument: when the inputs are per-shard top-(k) pages over
// disjoint item sets under one total order (callers break score ties
// with a unique key such as the document ID), every global top-k item
// is in its owning shard's page, so the merged k-prefix equals the page
// a single index over the union would have returned. No rescoring is
// needed — only that cmp is the same total order the shards ranked by.
func MergeSorted[T any](lists [][]T, cmp func(a, b T) int, k int) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if k < 0 || k > total {
		k = total
	}
	out := make([]T, 0, k)
	cursors := make([]int, len(lists))
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if cursors[i] >= len(l) {
				continue
			}
			if best < 0 || cmp(l[cursors[i]], lists[best][cursors[best]]) < 0 {
				best = i
			}
		}
		out = append(out, lists[best][cursors[best]])
		cursors[best]++
	}
	return out
}
