package ncexplorer

import (
	"context"
	"errors"
	"fmt"
)

// ErrorCode classifies a facade error for programmatic callers. The
// HTTP layer maps codes to statuses and serializes them into the v2
// error envelope; library callers switch on them with AsError.
type ErrorCode string

const (
	// CodeInvalidArgument marks a structurally invalid request: empty
	// concept set, non-positive k, negative offset or min_score, an
	// unknown source name, or a name that resolves to an entity where a
	// concept is required.
	CodeInvalidArgument ErrorCode = "invalid_argument"
	// CodeUnknownConcept marks a concept name absent from the knowledge
	// graph. Details["suggestions"] carries the nearest concept names.
	CodeUnknownConcept ErrorCode = "unknown_concept"
	// CodeUnknownEntity marks an entity name absent from the knowledge
	// graph.
	CodeUnknownEntity ErrorCode = "unknown_entity"
	// CodeCancelled marks a query abandoned because its context was
	// cancelled.
	CodeCancelled ErrorCode = "cancelled"
	// CodeDeadlineExceeded marks a query abandoned because its context
	// deadline passed.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeNotFound marks a missing resource (an unknown session ID, an
	// unknown route).
	CodeNotFound ErrorCode = "not_found"
	// CodePermissionDenied marks a write operation the deployment has
	// not enabled (e.g. POST /v2/ingest on a server started without
	// -ingest).
	CodePermissionDenied ErrorCode = "permission_denied"
	// CodeSessionExpired marks an exploration session evicted by TTL.
	CodeSessionExpired ErrorCode = "session_expired"
	// CodeCorruptSnapshot marks a persisted snapshot directory that
	// cannot be loaded: bad magic, truncated or bit-flipped files,
	// checksum mismatches, or a manifest referencing missing files.
	// Open never returns a partially-initialized Explorer alongside it.
	CodeCorruptSnapshot ErrorCode = "corrupt_snapshot"
	// CodeVersionMismatch marks a persisted snapshot written in a format
	// version this build does not read (e.g. by a newer release).
	CodeVersionMismatch ErrorCode = "version_mismatch"
	// CodeNoHistory marks a back/undo on a session at its root pattern.
	CodeNoHistory ErrorCode = "no_history"
	// CodeLimitExceeded marks a registration refused by a configured
	// capacity bound (e.g. the watchlist limit). The HTTP layer maps it
	// to 429.
	CodeLimitExceeded ErrorCode = "limit_exceeded"
	// CodeShardUnavailable marks a scatter-gather query that could not
	// reach some corpus shard: every replica of that shard was down,
	// syncing, or answering at a skewed generation past the router's
	// retry budget. The HTTP layer maps it to 503 — the cluster serves
	// exact answers or none, never silently partial ones (unless the
	// caller opts in; see the router's partial flag).
	CodeShardUnavailable ErrorCode = "shard_unavailable"
	// CodeInternal marks a server-side failure.
	CodeInternal ErrorCode = "internal"
)

// Error is the facade's typed error: a machine-readable code, the
// human-readable message (returned verbatim by Error() so /v1 clients
// and existing callers see the same strings as before this API
// existed), and optional structured details such as nearest-concept
// suggestions.
type Error struct {
	Code    ErrorCode
	Message string
	Details map[string]any
	// Err is the wrapped cause, if any (e.g. the context error behind
	// CodeCancelled), surfaced through Unwrap for errors.Is.
	Err error
}

func (e *Error) Error() string { return e.Message }

// Unwrap exposes the cause so errors.Is(err, context.Canceled) keeps
// working through the typed wrapper.
func (e *Error) Unwrap() error { return e.Err }

// newErrorf builds an Error with a formatted message and no details.
func newErrorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// AsError extracts the typed error from err's chain. The boolean is
// false when err carries no *Error, in which case callers should treat
// it as CodeInternal.
func AsError(err error) (*Error, bool) {
	var e *Error
	ok := errors.As(err, &e)
	return e, ok
}

// ctxError wraps a context error in the matching typed code. It
// returns nil when err is nil.
func ctxError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Message: "ncexplorer: query deadline exceeded", Err: err}
	default:
		return &Error{Code: CodeCancelled, Message: "ncexplorer: query cancelled", Err: err}
	}
}
