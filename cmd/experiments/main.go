// Command experiments regenerates every table and figure of the
// paper's evaluation (§IV) on the synthetic world and prints them in
// the paper's layout. EXPERIMENTS.md records one such run next to the
// paper's numbers.
//
// Usage:
//
//	go run ./cmd/experiments              # default scale (~minutes)
//	go run ./cmd/experiments -scale tiny  # quick smoke run
//	go run ./cmd/experiments -only tableI,fig7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ncexplorer/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "default", "world scale: tiny or default")
	only := flag.String("only", "", "comma-separated experiment filter (dataset,tableI,tableII,tableIII,fig4,fig5,fig6,fig7,fig8,reach,gptdirect)")
	flag.Parse()

	var scale harness.Scale
	switch *scaleFlag {
	case "default":
		scale = harness.Default
	case "tiny":
		scale = harness.Tiny
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[strings.ToLower(name)] = true
		}
	}
	enabled := func(name string) bool { return len(want) == 0 || want[strings.ToLower(name)] }

	start := time.Now()
	fmt.Printf("building %s world...\n", scale)
	w := harness.GetWorld(scale)
	fmt.Printf("world ready in %.1fs: %d KG nodes, %d instance edges, %d articles\n\n",
		time.Since(start).Seconds(), w.G.NumNodes(), w.G.NumInstanceEdges(), w.Corpus.Len())

	section := func(title string) {
		fmt.Printf("═══ %s ═══\n", title)
	}

	if enabled("dataset") {
		section("E0 · Dataset statistics (§IV)")
		fmt.Println(harness.FormatDatasetStats(w.DatasetStats()))
	}

	var topics []harness.TableITopic
	if enabled("tableI") || enabled("tableII") {
		topics = w.TableI()
	}
	if enabled("tableI") {
		section("E1 · Table I — NDCG@K without / with GPT re-rank")
		fmt.Println(harness.FormatTableI(topics))
	}
	if enabled("tableII") {
		section("E2 · Table II — impact of the GPT re-rank")
		fmt.Println(harness.FormatTableII(harness.TableII(topics)))
	}
	if enabled("tableIII") {
		section("E3 · Table III — analyst productivity study (n=10)")
		fmt.Println(harness.FormatTableIII(w.TableIII(10)))
	}
	if enabled("fig4") {
		section("E4 · Fig. 4 — indexing time per article")
		fmt.Println(harness.FormatFig4(w.Fig4(100)))
	}
	if enabled("fig5") {
		section("E5 · Fig. 5 — retrieval time vs query concepts")
		fmt.Println(harness.FormatFig5(w.Fig5(100)))
	}
	if enabled("fig6") {
		section("E6 · Fig. 6 — context relevance effectiveness")
		fmt.Println(harness.FormatFig6(w.Fig6(100)))
	}
	if enabled("fig7") {
		section("E7 · Fig. 7 — RW estimator convergence")
		fmt.Println(harness.FormatFig7(w.Fig7(20, 5)))
	}
	if enabled("fig8") {
		section("E8 · Fig. 8 — drill-down component ablation")
		fmt.Println(harness.FormatFig8(w.Fig8()))
	}
	if enabled("reach") {
		section("E9 · Reachability index construction (§IV-A2)")
		fmt.Println(harness.FormatReachBuild(w.ReachIndexBuild(500)))
	}
	if enabled("gptdirect") {
		section("E10 · Extension — GPT as a direct ranker (§IV-A1 future work)")
		fmt.Println(harness.FormatGPTDirect(w.GPTDirect()))
	}
	fmt.Printf("total wall time %.1fs\n", time.Since(start).Seconds())
}
