// Command datagen generates the synthetic knowledge graph and news
// corpus and writes them to disk: the KG as an edge-list JSON
// (loadable back through internal/kg.Load) and the corpus as JSON
// lines with gold labels — the analogue of the dataset release the
// paper describes ("200k news articles, with entity and concept
// annotations").
//
// Usage:
//
//	go run ./cmd/datagen -out ./data [-scale tiny|default] [-seed 42]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
)

func main() {
	out := flag.String("out", "data", "output directory")
	scale := flag.String("scale", "tiny", "world scale: tiny or default")
	seed := flag.Uint64("seed", 42, "generation seed")
	flag.Parse()

	var kcfg kggen.Config
	var ccfg corpus.Config
	switch *scale {
	case "tiny":
		kcfg, ccfg = kggen.Tiny(), corpus.Tiny()
	case "default":
		kcfg, ccfg = kggen.Default(), corpus.Default()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	kcfg.Seed = *seed
	ccfg.Seed = (*seed ^ 0xC0) + 7

	g, meta, err := kggen.Generate(kcfg)
	if err != nil {
		fatal(err)
	}
	c, err := corpus.Generate(g, meta, ccfg)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	kgPath := filepath.Join(*out, "kg.json")
	if err := writeKG(g, kgPath); err != nil {
		fatal(err)
	}
	corpusPath := filepath.Join(*out, "corpus.jsonl")
	if err := writeCorpus(g, c, corpusPath); err != nil {
		fatal(err)
	}
	stats := g.Stats()
	fmt.Printf("wrote %s (%d nodes, %d instance edges, %d type assertions)\n",
		kgPath, stats.Nodes, stats.InstanceEdges, stats.TypeAssertions)
	fmt.Printf("wrote %s (%d articles)\n", corpusPath, c.Len())
}

func writeKG(g *kg.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.Dump(f)
}

// articleJSON is the corpus dump schema: text plus the gold annotations
// that make the dataset useful for retrieval research.
type articleJSON struct {
	ID         int                `json:"id"`
	Source     string             `json:"source"`
	Title      string             `json:"title"`
	Body       string             `json:"body"`
	Entities   []string           `json:"entities"`
	Topics     map[string]float64 `json:"topic_grades"`
	Distractor bool               `json:"distractor,omitempty"`
}

func writeCorpus(g *kg.Graph, c *corpus.Corpus, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range c.Docs {
		d := &c.Docs[i]
		row := articleJSON{
			ID:         int(d.ID),
			Source:     d.Source.String(),
			Title:      d.Title,
			Body:       d.Body,
			Topics:     map[string]float64{},
			Distractor: d.Distractor,
		}
		for _, e := range d.GoldEntities {
			row.Entities = append(row.Entities, g.Name(e))
		}
		for cid, grade := range d.Topics {
			row.Topics[g.Name(cid)] = grade
		}
		if err := enc.Encode(&row); err != nil {
			return err
		}
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
