// Command ncrouter is the scatter-gather front door of a sharded
// NCExplorer cluster: it owns no corpus, only the deterministic
// knowledge graph, and answers the public /v2 query endpoints by
// fanning out to the shards' internal scatter endpoints and merging
// their answers exactly — byte-identical to a monolithic server over
// the union corpus (see internal/cluster and DESIGN.md §10).
//
// Usage:
//
//	go run ./cmd/ncrouter -addr :8090 \
//	    -shard http://leader0:8080,http://replica0a:8081 \
//	    -shard http://leader1:8090,http://replica1a:8091 \
//	    [-scale tiny|default] [-seed 42] [-timeout 10s] [-maxk 100] \
//	    [-sync-interval 2s]
//
// Each -shard flag lists one corpus shard's replica set, leader first;
// reads prefer the replicas and fall back to the leader, while the
// term-statistics exchange (which keeps every shard scoring with
// corpus-global IDF) always talks to leaders.
//
// The router must resolve concept names against the same world the
// shards were built on. It discovers (scale, seed) from the first
// shard manifest it can fetch and verifies every other reachable shard
// agrees; -scale/-seed are the fallback when no shard is up yet.
//
// Endpoints:
//
//	POST /v2/query/rollup      exact cross-shard roll-up (?partial=true
//	POST /v2/query/drilldown   opts into partial answers when shards
//	                           are down; otherwise failures are typed:
//	                           503 shard_unavailable, 504 deadline_exceeded)
//	GET  /v1/topics            answered from the router's own graph
//	GET  /v1/keywords/{c}      proxied to any live replica
//	GET  /healthz  GET /statsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ncexplorer"
	"ncexplorer/internal/cluster"
	"ncexplorer/internal/segio"
)

// shardFlags collects repeated -shard flags, each a comma-separated
// replica list with the leader first.
type shardFlags [][]string

func (s *shardFlags) String() string { return fmt.Sprint([][]string(*s)) }

func (s *shardFlags) Set(v string) error {
	var replicas []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("shard replica %q: want an http(s) base URL", u)
		}
		replicas = append(replicas, u)
	}
	if len(replicas) == 0 {
		return errors.New("empty -shard replica list")
	}
	*s = append(*s, replicas)
	return nil
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	var shards shardFlags
	flag.Var(&shards, "shard", "one corpus shard's replica base URLs, leader first, comma-separated (repeatable)")
	scale := flag.String("scale", "default", "world scale fallback when no shard manifest is reachable at boot")
	seed := flag.Uint64("seed", 42, "world seed fallback when no shard manifest is reachable at boot")
	timeout := flag.Duration("timeout", 10*time.Second, "per-shard answer budget, all replica attempts included")
	maxK := flag.Int("maxk", 100, "maximum k accepted by query endpoints")
	syncInterval := flag.Duration("sync-interval", 2*time.Second, "term-statistics exchange cadence across shard leaders")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "drain deadline for graceful shutdown")
	flag.Parse()

	if len(shards) == 0 {
		log.Fatal("at least one -shard replica list is required")
	}

	worldScale, worldSeed := discoverWorld(shards, *scale, *seed)
	start := time.Now()
	world, err := ncexplorer.NewQueryWorld(worldScale, worldSeed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world graph ready in %.1fs (%s, seed %d)", time.Since(start).Seconds(), worldScale, worldSeed)

	rt := &cluster.Router{
		World:   world,
		Shards:  shards,
		Timeout: *timeout,
		MaxK:    *maxK,
		Logf:    log.Printf,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The first exchange runs before serving so the earliest queries
	// already score with corpus-global statistics; failures are retried
	// on the timer, and the generation barrier protects correctness in
	// the meantime.
	if err := rt.SyncStats(ctx); err != nil {
		log.Printf("initial stats sync: %v (retrying every %s)", err, *syncInterval)
	}
	go rt.RunStatsSync(ctx, *syncInterval)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	var shutdownErr error
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		shutdownErr = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("routing %d shard(s) on %s (POST /v2/query/rollup, POST /v2/query/drilldown, "+
		"GET /v1/topics, GET /v1/keywords/{concept}, GET /healthz, GET /statsz)", len(shards), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	if shutdownErr != nil {
		log.Printf("shutdown: drain incomplete: %v", shutdownErr)
		os.Exit(1)
	}
	log.Print("shut down cleanly")
}

// discoverWorld asks the shards which world they were built on: every
// leader's manifest records the synthetic-world scale and the engine
// seed, and equal (scale, seed) guarantees byte-identical graphs. The
// first reachable manifest wins; any other reachable shard that
// disagrees is a fatal misconfiguration (merging across different
// graphs would be silently wrong). When nothing is reachable — the
// router often boots first — the flag fallbacks apply.
func discoverWorld(shards [][]string, scale string, seed uint64) (string, uint64) {
	client := &http.Client{Timeout: 5 * time.Second}
	found := false
	var from string
	for _, replicas := range shards {
		for _, base := range replicas {
			m, err := fetchManifest(client, base)
			if err != nil {
				continue
			}
			mScale := m.World["scale"]
			if mScale == "" {
				continue
			}
			if !found {
				scale, seed, from, found = mScale, m.Engine.Seed, base, true
				break
			}
			if mScale != scale || m.Engine.Seed != seed {
				log.Fatalf("shard worlds disagree: %s is (%s, seed %d) but %s is (%s, seed %d)",
					from, scale, seed, base, mScale, m.Engine.Seed)
			}
			break
		}
	}
	if found {
		log.Printf("world discovered from %s: scale %s, seed %d", from, scale, seed)
	} else {
		log.Printf("no shard manifest reachable; using -scale %s -seed %d", scale, seed)
	}
	return scale, seed
}

// fetchManifest pulls and validates one node's snapshot manifest.
func fetchManifest(client *http.Client, base string) (*segio.Manifest, error) {
	resp, err := client.Get(base + "/internal/manifest")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET %s/internal/manifest: %s", base, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return segio.ParseManifest(data)
}
