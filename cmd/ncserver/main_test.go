package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ncexplorer"
)

// The shutdown-persistence contract (ISSUE 5): a failed final save
// must be reported (persistOnShutdown returns false so main exits
// non-zero) and must leave any previous snapshot intact; a successful
// one must produce a store a warm boot reopens.

var (
	testExplorerOnce sync.Once
	testExplorer     *ncexplorer.Explorer
	testExplorerErr  error
)

func tinyExplorer(t *testing.T) *ncexplorer.Explorer {
	t.Helper()
	testExplorerOnce.Do(func() {
		testExplorer, testExplorerErr = ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	})
	if testExplorerErr != nil {
		t.Fatal(testExplorerErr)
	}
	return testExplorer
}

// unwritableDir returns a path into which no directory can be created,
// regardless of the uid running the tests (permission bits do not stop
// root; a path through a regular file stops everyone).
func unwritableDir(t *testing.T) string {
	t.Helper()
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(file, "data")
}

func TestPersistOnShutdownFailureIsReported(t *testing.T) {
	x := tinyExplorer(t)
	if persistOnShutdown(x, unwritableDir(t)) {
		t.Fatal("persistOnShutdown reported success for an unwritable data dir")
	}
	// No data dir configured → nothing to save → success.
	if !persistOnShutdown(x, "") {
		t.Fatal("persistOnShutdown without a data dir must succeed")
	}
}

// TestPersistOnShutdownKeepsPreviousSnapshot: when the final save
// cannot run, the store saved by a previous shutdown still opens.
func TestPersistOnShutdownKeepsPreviousSnapshot(t *testing.T) {
	x := tinyExplorer(t)
	dir := t.TempDir()
	if !persistOnShutdown(x, dir) {
		t.Fatal("initial save failed")
	}

	// A later shutdown whose save fails must not disturb what earlier
	// shutdowns persisted (core-level injection tests cover failures in
	// the same directory; here the save fails before touching any dir).
	if persistOnShutdown(x, unwritableDir(t)) {
		t.Fatal("save into unwritable dir succeeded")
	}

	// The earlier snapshot still boots, warm.
	y, err := bootExplorer(dir, "ignored", 0, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if y.Generation() != x.Generation() || y.NumArticles() != x.NumArticles() {
		t.Fatalf("warm boot diverges: gen %d/%d docs %d/%d",
			y.Generation(), x.Generation(), y.NumArticles(), x.NumArticles())
	}
	if y.Stats().Persist.Opens != 1 {
		t.Fatal("warm boot did not open the snapshot")
	}
}

// TestBootExplorerColdStart: without a data dir (or with an empty /
// not-yet-existing one), boot builds the world from scratch; a path
// that cannot even be read is a hard error, not a fallback.
func TestBootExplorerColdStart(t *testing.T) {
	x, err := bootExplorer("", "tiny", 7, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Stats().Persist.Opens != 0 {
		t.Fatal("cold boot claims to have opened a snapshot")
	}
	if _, err := bootExplorer(t.TempDir(), "tiny", 7, 0, 0, 0, 0, 0, 0); err != nil {
		t.Fatalf("empty data dir must fall back to a cold build: %v", err)
	}
	if _, err := bootExplorer(unwritableDir(t), "tiny", 7, 0, 0, 0, 0, 0, 0); err == nil {
		t.Fatal("an unreadable data path must fail the boot, not silently rebuild")
	}
}

// TestBootExplorerRejectsCorruptSnapshot: a present-but-damaged
// snapshot is a hard boot error, never a silent rebuild — rebuilding
// would let the shutdown save garbage-collect the previous snapshot's
// files and destroy the evidence.
func TestBootExplorerRejectsCorruptSnapshot(t *testing.T) {
	x := tinyExplorer(t)
	damage := []struct {
		name  string
		apply func(t *testing.T, dir string)
	}{
		{"missing segment files", func(t *testing.T, dir string) {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range entries {
				if filepath.Ext(ent.Name()) == ".ncseg" {
					if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
						t.Fatal(err)
					}
				}
			}
		}},
		{"truncated manifest", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "MANIFEST")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"future manifest version", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "MANIFEST")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			replaced := strings.Replace(string(data), `"format_version": 1`, `"format_version": 99`, 1)
			if replaced == string(data) {
				t.Fatal("format_version marker not found")
			}
			if err := os.WriteFile(path, []byte(replaced), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := x.Save(dir); err != nil {
				t.Fatal(err)
			}
			tc.apply(t, dir)
			if _, err := bootExplorer(dir, "tiny", 42, 0, 0, 0, 0, 0, 0); err == nil {
				t.Fatal("boot on a damaged snapshot must fail loudly")
			}
		})
	}
}
