// Command ncserver serves the NCExplorer engine over HTTP/JSON: the
// paper's interactive roll-up/drill-down workflow as a programmable
// API for dashboards and downstream risk pipelines.
//
// Usage:
//
//	go run ./cmd/ncserver [-addr :8080] [-scale tiny|default] [-seed 42]
//	                      [-cache-shards 8] [-cache-capacity 256] [-maxk 100]
//	                      [-max-batch 64] [-session-ttl 30m] [-max-sessions 1024]
//
// Endpoints (see internal/server for payload shapes):
//
//	POST /v1/rollup             GET /v1/broader/{concept}
//	POST /v1/drilldown          GET /v1/keywords/{concept}
//	GET  /v1/concepts/{entity}  GET /v1/topics
//	POST /v2/query/rollup       POST /v2/query/drilldown
//	POST /v2/batch              /v2/sessions (+ /{id}/rollup|drilldown|back)
//	GET  /healthz               GET /statsz
//
// Example session (the stateful exploration loop):
//
//	curl -s localhost:8080/v1/topics
//	curl -s -X POST localhost:8080/v2/query/rollup \
//	    -d '{"concepts":["International trade","Country"],"k":5,"offset":0,"explain":true}'
//	curl -s -X POST localhost:8080/v2/sessions -d '{"concepts":["International trade"]}'
//	curl -s -X POST localhost:8080/v2/sessions/<id>/drilldown -d '{"k":8,"select":"<subtopic>"}'
//	curl -s -X POST localhost:8080/v2/sessions/<id>/back
//	curl -s localhost:8080/statsz
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ncexplorer"
	"ncexplorer/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "default", "world scale: tiny or default")
	seed := flag.Uint64("seed", 42, "generation seed (0 selects the built-in default, 42)")
	shards := flag.Int("cache-shards", 8, "result cache shard count")
	capacity := flag.Int("cache-capacity", 256, "result cache entries per shard (negative disables)")
	maxK := flag.Int("maxk", 100, "maximum k accepted by query endpoints")
	maxBatch := flag.Int("max-batch", 64, "maximum queries per /v2/batch call")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle lifetime of exploration sessions")
	maxSessions := flag.Int("max-sessions", 1024, "maximum live exploration sessions (LRU eviction beyond)")
	flag.Parse()

	if *seed == 0 {
		log.Print("seed 0 selects the built-in default (42)")
	}
	log.Printf("building %s world (seed %d)...", *scale, *seed)
	start := time.Now()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world ready in %.1fs — %d articles indexed", time.Since(start).Seconds(), x.NumArticles())

	s := server.New(x, server.Options{
		CacheShards:   *shards,
		CacheCapacity: *capacity,
		MaxK:          *maxK,
		MaxBatch:      *maxBatch,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	var shutdownErr error
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving on %s (POST /v1/rollup, POST /v1/drilldown, GET /v1/concepts/{entity}, "+
		"GET /v1/broader/{concept}, GET /v1/keywords/{concept}, GET /v1/topics, "+
		"POST /v2/query/rollup, POST /v2/query/drilldown, POST /v2/batch, "+
		"/v2/sessions CRUD + /{id}/rollup|drilldown|back, GET /healthz, GET /statsz)", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ErrServerClosed arrives as soon as the listener stops; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	<-drained
	if shutdownErr != nil {
		log.Printf("shutdown: drain incomplete: %v", shutdownErr)
		os.Exit(1)
	}
	log.Print("shut down cleanly")
}
