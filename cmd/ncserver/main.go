// Command ncserver serves the NCExplorer engine over HTTP/JSON: the
// paper's interactive roll-up/drill-down workflow as a programmable
// API for dashboards and downstream risk pipelines, with optional
// live ingestion so the index tracks incoming news without restarts.
//
// Usage:
//
//	go run ./cmd/ncserver [-addr :8080] [-scale tiny|default] [-seed 42]
//	                      [-cache-shards 8] [-cache-capacity 256] [-maxk 100]
//	                      [-max-batch 64] [-session-ttl 30m] [-max-sessions 1024]
//	                      [-ingest] [-max-ingest-batch 1024] [-max-segments 4]
//	                      [-watch DIR] [-watch-interval 2s] [-data-dir DIR]
//	                      [-max-watchlists 64] [-alert-buffer 256]
//	                      [-webhook-timeout 5s]
//	                      [-role leader|replica] [-peer URL] [-shard i/n]
//	                      [-sync-interval 500ms]
//
// Endpoints (see internal/server for payload shapes):
//
//	POST /v1/rollup             GET /v1/broader/{concept}
//	POST /v1/drilldown          GET /v1/keywords/{concept}
//	GET  /v1/concepts/{entity}  GET /v1/topics
//	POST /v2/query/rollup       POST /v2/query/drilldown
//	POST /v2/batch              POST /v2/ingest (with -ingest)
//	/v2/sessions (+ /{id}/rollup|drilldown|back)
//	/v2/watchlists (+ /{id}, /{id}/events SSE stream)
//	GET  /healthz               GET /statsz
//
// Standing queries:
//
//	POST /v2/watchlists registers a concept pattern (with optional
//	source/min-score filters and a webhook URL); every batch ingested
//	afterwards — via /v2/ingest or -watch — is evaluated against it and
//	matches are pushed as alerts: streamed on GET
//	/v2/watchlists/{id}/events (SSE, resume with ?after=<last id>) and
//	POSTed to the webhook with bounded retries. Watchlists and delivery
//	cursors persist in -data-dir and survive restarts.
//	-max-watchlists caps registrations, -alert-buffer sets the
//	per-watchlist retention window, -webhook-timeout bounds each POST.
//
// Live ingestion:
//
//	-ingest enables POST /v2/ingest:
//	    curl -s -X POST localhost:8080/v2/ingest \
//	        -d '{"articles":[{"source":"reuters","title":"...","body":"..."}]}'
//	-watch DIR additionally polls DIR for *.json files (each either an
//	array of articles or {"articles":[...]}), ingests them, and renames
//	processed files to *.json.ingested — a zero-dependency stand-in for
//	a feed consumer. -watch implies -ingest's pipeline but does not
//	open the HTTP endpoint unless -ingest is also set.
//
// Multi-node serving:
//
//	-role leader marks this node the write side of a replica set: it
//	requires -data-dir (the snapshot directory is what ships) and
//	additionally serves the internal replication and scatter endpoints
//	(GET /internal/manifest, GET /internal/segments/{name},
//	GET /internal/stats, POST /internal/remote-stats, and the
//	POST /internal/query/* scatter calls a router fans out).
//	-role replica boots with no corpus at all: it polls -peer (the
//	leader's base URL) for new snapshot generations, ships only the
//	segment files it has never seen into -data-dir, warm-opens each
//	complete snapshot, and swaps it into the serving path atomically.
//	Until its first catch-up completes every public endpoint answers
//	503 {"state":"syncing",...}, which is how routers exclude it.
//	-shard i/n builds (or, on warm boot, verifies) this node as shard
//	i of an n-way federated corpus: it indexes only its slice of the
//	articles under global document IDs, and scores with corpus-global
//	statistics once a router runs the term-statistics exchange. See
//	cmd/ncrouter for the scatter-gather front door and DESIGN.md §10
//	for the topology.
//
// Durable snapshots:
//
//	-data-dir DIR makes restarts boring. On boot, if DIR holds a saved
//	snapshot it is opened instead of rebuilding the world — the NLP/
//	linking pipeline is skipped entirely and -scale/-seed are taken
//	from the snapshot's manifest. While running, every committed ingest
//	batch (HTTP or -watch) is checkpointed into DIR, so a crash loses
//	at most the batch in flight. On graceful shutdown the index is
//	fully saved (including the connectivity-score cache that makes the
//	next open fast). A failed final save logs, leaves the previous
//	snapshot intact, and exits non-zero so supervisors notice.
//
// Shutdown: SIGINT/SIGTERM ends SSE streams, stops the listener,
// drains in-flight requests (bounded by -shutdown-timeout), waits for
// the directory watcher to finish any batch it started, stops the
// webhook worker after its in-flight delivery, lets background segment
// merges quiesce, and then performs the final -data-dir save. The
// ordering matters: every committed batch's alerts are fired before
// the final save runs, and an alert whose webhook delivery was cut off
// keeps its un-acked cursor, so it is redelivered after restart rather
// than dropped (at-least-once delivery).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ncexplorer"
	"ncexplorer/internal/cluster"
	"ncexplorer/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "default", "world scale: tiny or default")
	seed := flag.Uint64("seed", 42, "generation seed (0 selects the built-in default, 42)")
	shards := flag.Int("cache-shards", 8, "result cache shard count")
	capacity := flag.Int("cache-capacity", 256, "result cache entries per shard (negative disables)")
	maxK := flag.Int("maxk", 100, "maximum k accepted by query endpoints")
	maxBatch := flag.Int("max-batch", 64, "maximum queries per /v2/batch call")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle lifetime of exploration sessions")
	maxSessions := flag.Int("max-sessions", 1024, "maximum live exploration sessions (LRU eviction beyond)")
	ingest := flag.Bool("ingest", false, "enable POST /v2/ingest (live article ingestion)")
	ingestPipeline := flag.Bool("ingest-pipeline", true, "overlap ingest checkpoints with analysis (false: each batch blocks until its checkpoint is on disk)")
	maxIngestBatch := flag.Int("max-ingest-batch", 1024, "maximum articles per /v2/ingest call")
	maxSegments := flag.Int("max-segments", 4, "index segment count above which background merges trigger")
	watch := flag.String("watch", "", "directory to poll for *.json article batches to ingest")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "poll interval for -watch")
	maxWatchlists := flag.Int("max-watchlists", 64, "maximum registered watchlists (standing queries)")
	alertBuffer := flag.Int("alert-buffer", 256, "per-watchlist alert retention window (SSE catch-up and webhook redelivery)")
	webhookTimeout := flag.Duration("webhook-timeout", 5*time.Second, "per-attempt timeout for webhook alert deliveries")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "drain deadline for graceful shutdown")
	dataDir := flag.String("data-dir", "", "durable snapshot directory: warm-open on boot, checkpoint ingests, save on shutdown")
	role := flag.String("role", "", "cluster role: leader or replica (empty: standalone)")
	peer := flag.String("peer", "", "leader base URL to replicate from (with -role replica)")
	shardSpec := flag.String("shard", "", "shard position i/n of a federated corpus, e.g. 0/2")
	syncInterval := flag.Duration("sync-interval", 500*time.Millisecond, "replica manifest poll interval")
	flag.Parse()

	if *seed == 0 {
		log.Print("seed 0 selects the built-in default (42)")
	}
	if *role != "" && *role != "leader" && *role != "replica" {
		log.Fatalf("-role %q: want leader, replica, or empty (standalone)", *role)
	}
	shardIdx, shardCount, err := parseShardSpec(*shardSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *role == "leader" && *dataDir == "" {
		log.Fatal("-role leader requires -data-dir: the snapshot directory is what ships to replicas")
	}
	if *role == "replica" {
		if *peer == "" {
			log.Fatal("-role replica requires -peer (the leader's base URL)")
		}
		if *dataDir == "" {
			log.Fatal("-role replica requires -data-dir (the local snapshot mirror)")
		}
	}
	// Only an explicit -max-segments overrides a snapshot's saved merge
	// policy on warm boot; the flag's default must not.
	openMaxSegments := 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "max-segments" {
			openMaxSegments = *maxSegments
		}
	})
	// A replica boots with no explorer at all: the catch-up loop below
	// ships the leader's snapshot and installs one; the readiness gate
	// answers 503 syncing in the meantime.
	var x *ncexplorer.Explorer
	if *role != "replica" {
		x, err = bootExplorer(*dataDir, *scale, *seed, *maxSegments, openMaxSegments,
			*maxWatchlists, *alertBuffer, shardIdx, shardCount)
		if err != nil {
			log.Fatal(err)
		}
		// The webhook worker starts before serving so un-acked deliveries
		// from a previous run (loaded with the snapshot) resume immediately.
		x.StartWebhooks(*webhookTimeout)
		if *dataDir != "" {
			// Persist every committed ingest so a crash (as opposed to a
			// graceful shutdown) loses at most the batch in flight. For a
			// leader this is also the replication feed: replicas poll the
			// checkpointed snapshot directory.
			x.CheckpointTo(*dataDir)
		}
		if !*ingestPipeline {
			x.SetIngestPipeline(false)
		}
		if *role == "leader" && !ncexplorer.HasSnapshot(*dataDir) {
			// A cold-built leader publishes its seed snapshot immediately:
			// replicas bootstrap from the manifest, and waiting for the
			// first ingest would leave them syncing forever on a read-only
			// corpus.
			if err := x.Save(*dataDir); err != nil {
				log.Fatal(err)
			}
			log.Printf("published initial snapshot to %s (generation %d)", *dataDir, x.Generation())
		}
	}

	opts := server.Options{
		CacheShards:    *shards,
		CacheCapacity:  *capacity,
		MaxK:           *maxK,
		MaxBatch:       *maxBatch,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		EnableIngest:   *ingest,
		MaxIngestBatch: *maxIngestBatch,
	}
	if *role != "" || shardCount > 1 {
		// Cluster nodes (and standalone shards a router may query)
		// expose the internal scatter endpoints.
		opts.EnableCluster = true
	}
	if *role != "" {
		// Leaders ship their checkpoint directory; replicas re-serve the
		// mirror they fetched, so replicas can daisy-chain.
		opts.ClusterDataDir = *dataDir
	}
	s := server.New(x, opts)

	var rep *cluster.Replica
	if *role == "replica" {
		rep = newReplica(s, strings.TrimRight(*peer, "/"), *dataDir, *syncInterval,
			ncexplorer.OpenOptions{
				MaxSegments:   openMaxSegments,
				MaxWatchlists: *maxWatchlists,
				AlertBuffer:   *alertBuffer,
			})
	} else if *role == "leader" {
		s.SetClusterInfo(func() *server.ClusterInfo {
			idx, n, _ := x.ShardInfo()
			return &server.ClusterInfo{
				Role: "leader", Shard: idx, ShardCount: n,
				Generation: x.Generation(),
			}
		})
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var watchWG sync.WaitGroup
	if *watch != "" && x != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			watchLoop(ctx, x, *watch, *watchInterval)
		}()
		log.Printf("watching %s for article batches every %s", *watch, *watchInterval)
	}
	if rep != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			rep.Run(ctx)
		}()
		log.Printf("replicating from %s into %s (poll every %s)", *peer, *dataDir, *syncInterval)
	}

	drained := make(chan struct{})
	var shutdownErr error
	go func() {
		defer close(drained)
		<-ctx.Done()
		// SSE streams end first: Shutdown waits for handlers to return,
		// and an open alert stream would otherwise hold the drain until
		// its deadline.
		s.StopStreams()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		shutdownErr = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving on %s (POST /v1/rollup, POST /v1/drilldown, GET /v1/concepts/{entity}, "+
		"GET /v1/broader/{concept}, GET /v1/keywords/{concept}, GET /v1/topics, "+
		"POST /v2/query/rollup, POST /v2/query/drilldown, POST /v2/batch, POST /v2/ingest, "+
		"/v2/sessions CRUD + /{id}/rollup|drilldown|back, GET /healthz, GET /statsz)", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ErrServerClosed arrives as soon as the listener stops; wait for
	// Shutdown to finish draining in-flight requests (queries AND
	// ingest batches), then for the watcher to finish the batch it may
	// have started — only then is the set of committed batches (and the
	// alerts they fired) final — then stop the webhook worker after its
	// in-flight delivery, then let background segment merges settle.
	// An alert cut off un-acked keeps its delivery cursor; the final
	// save persists it and the next boot redelivers.
	<-drained
	watchWG.Wait()
	if x == nil {
		// A replica owns no durable state of its own: the mirror in
		// -data-dir is already a complete snapshot, and re-saving it
		// here would race the catch-up loop it just stopped.
		if shutdownErr != nil {
			log.Printf("shutdown: drain incomplete: %v", shutdownErr)
			os.Exit(1)
		}
		log.Print("shut down cleanly")
		return
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *shutdownTimeout)
	if err := x.DrainWebhooks(drainCtx); err != nil {
		log.Printf("shutdown: webhook drain incomplete: %v", err)
	}
	cancelDrain()
	x.Quiesce()
	// The final save runs only after the watcher has drained and merges
	// have settled, so the snapshot captures everything that was
	// committed. Failure here must NOT be silent: the previous snapshot
	// in -data-dir stays intact (the manifest swap is atomic and runs
	// last), but supervisors need the non-zero exit to know this
	// process's work was not fully persisted.
	saved := persistOnShutdown(x, *dataDir)
	if shutdownErr != nil {
		log.Printf("shutdown: drain incomplete: %v", shutdownErr)
	}
	if shutdownErr != nil || !saved {
		os.Exit(1)
	}
	log.Print("shut down cleanly")
}

// bootExplorer opens the saved snapshot in dataDir when one exists and
// builds the world from scratch otherwise. Only "nothing saved here"
// (CodeNotFound) selects the cold build: a present-but-unloadable
// snapshot — corrupt files, a future format version, an unreadable
// path — is a hard error, not a silent rebuild. Rebuilding would mask
// data loss, and the shutdown save's garbage collection would then
// destroy the evidence. openMaxSegments is the merge-policy override
// for a warm boot (0 keeps the snapshot's saved value); maxSegments
// configures a cold build. shardIdx/shardCount place the node in a
// federated corpus (shardCount > 1): a cold build indexes only this
// shard's slice, and a warm boot verifies the snapshot holds the shard
// the flags name — silently serving the wrong slice would corrupt
// every cross-shard merge.
func bootExplorer(dataDir, scale string, seed uint64, maxSegments, openMaxSegments, maxWatchlists, alertBuffer, shardIdx, shardCount int) (*ncexplorer.Explorer, error) {
	start := time.Now()
	if dataDir != "" {
		x, err := ncexplorer.Open(dataDir, ncexplorer.OpenOptions{
			MaxSegments:   openMaxSegments,
			MaxWatchlists: maxWatchlists,
			AlertBuffer:   alertBuffer,
		})
		if err == nil {
			if shardCount > 1 {
				if idx, n, _ := x.ShardInfo(); idx != shardIdx || n != shardCount {
					return nil, fmt.Errorf("snapshot in %s is shard %d/%d but -shard asked for %d/%d",
						dataDir, idx, n, shardIdx, shardCount)
				}
			}
			log.Printf("warm start from %s in %.1fs — %d articles (generation %d); -scale/-seed taken from the snapshot",
				dataDir, time.Since(start).Seconds(), x.NumArticles(), x.Generation())
			return x, nil
		}
		if e, ok := ncexplorer.AsError(err); !ok || e.Code != ncexplorer.CodeNotFound {
			return nil, err
		}
	}
	if shardCount > 1 {
		log.Printf("building %s world (seed %d), shard %d/%d...", scale, seed, shardIdx, shardCount)
	} else {
		log.Printf("building %s world (seed %d)...", scale, seed)
	}
	x, err := ncexplorer.New(ncexplorer.Config{
		Scale: scale, Seed: seed, MaxSegments: maxSegments,
		MaxWatchlists: maxWatchlists, AlertBuffer: alertBuffer,
		Shard: shardIdx, ShardCount: shardCount,
	})
	if err != nil {
		return nil, err
	}
	log.Printf("world ready in %.1fs — %d articles indexed (generation %d)",
		time.Since(start).Seconds(), x.NumArticles(), x.Generation())
	return x, nil
}

// parseShardSpec parses "-shard i/n" into a shard position. The empty
// spec means unsharded (0, 0).
func parseShardSpec(spec string) (idx, count int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	slash := strings.IndexByte(spec, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("-shard %q: want i/n, e.g. 0/2", spec)
	}
	idx, err1 := strconv.Atoi(spec[:slash])
	count, err2 := strconv.Atoi(spec[slash+1:])
	if err1 != nil || err2 != nil || count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("-shard %q: want i/n with 0 <= i < n", spec)
	}
	return idx, count, nil
}

// newReplica wires the catch-up loop into the server: each complete
// snapshot swap publishes the fresh explorer atomically, status
// transitions drive the readiness gate, and /statsz exposes the
// shipping counters and replication lag.
func newReplica(s *server.Server, peer, dataDir string, interval time.Duration, open ncexplorer.OpenOptions) *cluster.Replica {
	var cur atomic.Pointer[ncexplorer.Explorer]
	var target atomic.Uint64
	rep := &cluster.Replica{
		Fetcher:     &cluster.Fetcher{BaseURL: peer, Dir: dataDir},
		Interval:    interval,
		OpenOptions: open,
		OnSwap: func(x *ncexplorer.Explorer) {
			cur.Store(x)
			s.SetExplorer(x)
		},
		Status: func(generation, tgt uint64, syncing bool) {
			if tgt > 0 {
				target.Store(tgt)
			}
			s.SetSyncState(generation, tgt, syncing)
		},
	}
	s.SetClusterInfo(func() *server.ClusterInfo {
		c := rep.Fetcher.Counters()
		info := &server.ClusterInfo{
			Role:             "replica",
			Generation:       rep.Generation(),
			TargetGeneration: target.Load(),
			ManifestPolls:    c.ManifestPolls,
			SegmentsFetched:  c.SegmentsFetched,
			SegmentsReused:   c.SegmentsReused,
			BytesShipped:     c.BytesShipped,
		}
		if x := cur.Load(); x != nil {
			info.Shard, info.ShardCount, _ = x.ShardInfo()
		}
		if info.TargetGeneration > info.Generation {
			info.GenerationLag = int64(info.TargetGeneration - info.Generation)
		}
		return info
	})
	return rep
}

// persistOnShutdown performs the final -data-dir save. It returns true
// when there is nothing to save or the save succeeded; false means the
// save failed — the previous snapshot on disk is intact, the failure
// has been logged, and the caller must exit non-zero.
func persistOnShutdown(x *ncexplorer.Explorer, dataDir string) bool {
	if dataDir == "" {
		return true
	}
	start := time.Now()
	if err := x.Save(dataDir); err != nil {
		log.Printf("shutdown: final save to %s FAILED (previous snapshot left intact): %v", dataDir, err)
		return false
	}
	log.Printf("shutdown: saved snapshot to %s in %.1fs (generation %d, %d articles)",
		dataDir, time.Since(start).Seconds(), x.Generation(), x.NumArticles())
	return true
}

// watchLoop polls dir for *.json batch files and ingests them. A
// processed file is renamed to <name>.ingested (or <name>.failed when
// it cannot be parsed or ingested), so each batch is consumed once
// and the outcome is visible in the directory. The loop exits when
// ctx is cancelled; a batch already being ingested completes first —
// Ingest is atomic, so shutdown never leaves a half-visible batch.
func watchLoop(ctx context.Context, x *ncexplorer.Explorer, dir string, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		consumeBatches(ctx, x, dir)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// consumeBatches ingests every pending *.json file in dir, oldest
// name first (feeds conventionally timestamp their drops).
func consumeBatches(ctx context.Context, x *ncexplorer.Explorer, dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Printf("watch: %v", err)
		return
	}
	var names []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".json") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if ctx.Err() != nil {
			return
		}
		path := filepath.Join(dir, name)
		articles, err := readBatch(path)
		if err == nil && len(articles) > 0 {
			// A batch that starts ingesting completes: the shutdown
			// context stops the *loop* (checked above), never a batch
			// in flight — a cancelled Ingest would abort before the
			// swap and the file must not be marked failed for a
			// shutdown that merely arrived mid-batch.
			var res ncexplorer.IngestResult
			res, err = x.Ingest(context.Background(), articles)
			if err == nil {
				log.Printf("watch: ingested %d articles from %s (generation %d, %d total)",
					res.Accepted, name, res.Generation, res.TotalArticles)
			}
		} else if err == nil {
			err = errors.New("no articles in batch")
		}
		suffix := ".ingested"
		if err != nil {
			log.Printf("watch: %s: %v", name, err)
			suffix = ".failed"
		}
		if rerr := os.Rename(path, path+suffix); rerr != nil {
			log.Printf("watch: rename %s: %v", name, rerr)
			return // avoid re-ingesting the same file in a tight loop
		}
	}
}

// readBatch parses one batch file: either a bare article array or an
// {"articles": [...]} envelope (the /v2/ingest body shape).
func readBatch(path string) ([]ncexplorer.IngestArticle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var arr []ncexplorer.IngestArticle
	if err := json.Unmarshal(data, &arr); err == nil {
		return arr, nil
	}
	var env struct {
		Articles []ncexplorer.IngestArticle `json:"articles"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	return env.Articles, nil
}
