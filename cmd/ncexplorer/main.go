// Command ncexplorer is an interactive shell over the NCExplorer
// engine: build a synthetic world once, then explore it with roll-up
// and drill-down queries the way the paper's analysts do.
//
// Usage:
//
//	go run ./cmd/ncexplorer [-scale tiny|default] [-seed 42]
//
// Commands inside the shell:
//
//	concepts <entity>         roll-up options for an entity (Fig. 1 step 1)
//	broader <concept>         the next roll-up level
//	keywords <concept>        amplified keyword list for a topic
//	rollup <c1> ; <c2> ; …    top articles matching every concept
//	drill <c1> ; <c2> ; …     suggested subtopics for the query
//	topics                    the paper's six evaluation queries
//	help / quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ncexplorer"
)

func main() {
	scale := flag.String("scale", "tiny", "world scale: tiny or default")
	seed := flag.Uint64("seed", 42, "generation seed")
	flag.Parse()

	fmt.Printf("building %s world (seed %d)...\n", *scale, *seed)
	start := time.Now()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ready in %.1fs — %d articles indexed. Type 'help'.\n",
		time.Since(start).Seconds(), x.NumArticles())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := execute(x, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

func execute(x *ncexplorer.Explorer, line string) (quit bool) {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(cmd) {
	case "quit", "exit", "q":
		return true
	case "help", "?":
		fmt.Println(`commands:
  concepts <entity>       roll-up options for an entity, e.g. "concepts FTX"
  broader <concept>       parent concepts, e.g. "broader Bitcoin exchange"
  keywords <concept>      amplified keyword list for retrieval
  rollup <c1> ; <c2>      top articles for a concept pattern
  drill <c1> ; <c2>       subtopic suggestions for a concept pattern
  topics                  the paper's six evaluation queries
  quit`)
	case "concepts":
		list, err := x.ConceptsForEntity(rest)
		printList(list, err)
	case "broader":
		list, err := x.BroaderConcepts(rest)
		printList(list, err)
	case "keywords":
		list, err := x.TopicKeywords(rest, 10)
		printList(list, err)
	case "topics":
		for _, pair := range x.EvaluationTopics() {
			fmt.Printf("  rollup %s ; %s\n", pair[0], pair[1])
		}
	case "rollup":
		articles, err := x.RollUp(splitConcepts(rest), 5)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for i, a := range articles {
			fmt.Printf("%d. [%.3f] (%s) %s\n", i+1, a.Score, a.Source, a.Title)
			for _, e := range a.Explanations {
				fmt.Printf("     %-28s cdr=%.3f via %s\n", e.Concept, e.CDR, e.Pivot)
			}
		}
		if len(articles) == 0 {
			fmt.Println("no matching articles")
		}
	case "drill":
		subs, err := x.DrillDown(splitConcepts(rest), 8)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for i, s := range subs {
			fmt.Printf("%d. %-30s score=%.3f (coverage %.2f · specificity %.2f · diversity %.2f, %d docs)\n",
				i+1, s.Concept, s.Score, s.Coverage, s.Specificity, s.Diversity, s.MatchedDocs)
		}
		if len(subs) == 0 {
			fmt.Println("no subtopics")
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", cmd)
	}
	return false
}

func splitConcepts(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func printList(list []string, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(list) == 0 {
		fmt.Println("(none)")
		return
	}
	for _, item := range list {
		fmt.Println("  " + item)
	}
}
