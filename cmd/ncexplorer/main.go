// Command ncexplorer is an interactive shell over the NCExplorer
// engine: build a synthetic world once, then explore it with roll-up
// and drill-down queries the way the paper's analysts do.
//
// Usage:
//
//	go run ./cmd/ncexplorer [-scale tiny|default] [-seed 42] [-open DIR]
//
// -open DIR skips the world build and warm-starts from a snapshot
// directory saved earlier (by the in-shell `save` command or by
// ncserver's -data-dir); -scale/-seed are then taken from the
// snapshot's manifest.
//
// The shell is session-backed: `open` starts an exploration session
// holding the current concept pattern, `rollup`/`drill` with no
// arguments query it, `refine` drills into a subtopic (by name or by
// the number printed by the last `drill`), `back` undoes the last
// pattern change, and `history` prints the breadcrumb trail.
//
// Commands inside the shell:
//
//	concepts <entity>         roll-up options for an entity (Fig. 1 step 1)
//	broader <concept>         the next roll-up level
//	keywords <concept>        amplified keyword list for a topic
//	open <c1> ; <c2> ; …      start (or replace) the exploration pattern
//	rollup [<c1> ; <c2> …]    top articles (current pattern when no args)
//	drill [<c1> ; <c2> …]     suggested subtopics (current pattern when no args)
//	refine <concept|N>        add a subtopic to the pattern (N = drill row)
//	zoom <start>..<end>       restrict queries to a publication window
//	                          (dates or RFC3339; either side open;
//	                          "zoom off" clears; undoable with back)
//	trend [day|week|month]    per-period match histogram with deltas
//	back                      undo the last pattern change
//	history                   the session's breadcrumb trail
//	topics                    the paper's six evaluation queries
//	save <dir>                persist the index for a later -open
//	watch <c1> ; <c2> ; …     register a standing query; alerts print live
//	                          as matching articles are ingested; an @N/D
//	                          suffix alerts only on ≥N matches in D days
//	watchlists                list registered watchlists
//	unwatch <id>              remove a watchlist
//	feed <n>                  ingest n sample articles (fires watch alerts)
//	help / quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ncexplorer"
	"ncexplorer/internal/session"
)

// shell holds the interactive state: the explorer, the session store,
// and the live session (if any).
type shell struct {
	x        *ncexplorer.Explorer
	sessions *session.Store
	id       string   // current session ID; "" = none
	lastSubs []string // last drill suggestions, for "refine N"
	// window is the zoom window applied when no session is open; with a
	// session the window lives in the session store (breadcrumbed and
	// undoable) and this field is ignored.
	window *ncexplorer.TimeRange
	// watchSubs holds the live alert subscriptions opened by `watch`,
	// by watchlist ID, so `unwatch` can end the printer goroutine.
	watchSubs map[string]*ncexplorer.WatchSubscription
	// feedSeed varies each `feed` batch so repeated feeds draw
	// different sample articles.
	feedSeed uint64
}

func main() {
	scale := flag.String("scale", "tiny", "world scale: tiny or default")
	seed := flag.Uint64("seed", 42, "generation seed")
	open := flag.String("open", "", "snapshot directory to warm-start from instead of building a world")
	flag.Parse()

	start := time.Now()
	var x *ncexplorer.Explorer
	var err error
	if *open != "" {
		fmt.Printf("opening snapshot %s...\n", *open)
		x, err = ncexplorer.Open(*open, ncexplorer.OpenOptions{})
	} else {
		fmt.Printf("building %s world (seed %d)...\n", *scale, *seed)
		x, err = ncexplorer.New(ncexplorer.Config{Scale: *scale, Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ready in %.1fs — %d articles indexed (generation %d). Type 'help'.\n",
		time.Since(start).Seconds(), x.NumArticles(), x.Generation())

	sh := &shell{
		x:         x,
		sessions:  session.NewStore(session.Options{TTL: 24 * time.Hour}),
		watchSubs: make(map[string]*ncexplorer.WatchSubscription),
		feedSeed:  *seed,
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print(sh.prompt())
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := sh.execute(line); quit {
				return
			}
		}
		fmt.Print(sh.prompt())
	}
}

// prompt shows the current pattern (and zoom window, if any) so the
// analyst always knows where they are in the hierarchy.
func (sh *shell) prompt() string {
	win := formatWindow(sh.curWindow())
	if snap, ok := sh.current(); ok {
		if win != "" {
			return fmt.Sprintf("[%s | %s] > ", strings.Join(snap.Concepts, " ; "), win)
		}
		return fmt.Sprintf("[%s] > ", strings.Join(snap.Concepts, " ; "))
	}
	if win != "" {
		return fmt.Sprintf("[%s] > ", win)
	}
	return "> "
}

// curWindow resolves the zoom window queries should run under: the
// session's when one is open, the shell-local one otherwise.
func (sh *shell) curWindow() *ncexplorer.TimeRange {
	if snap, ok := sh.current(); ok {
		if snap.Window == nil {
			return nil
		}
		return &ncexplorer.TimeRange{Start: snap.Window.Start, End: snap.Window.End}
	}
	return sh.window
}

// formatWindow renders a window compactly, trimming midnight-UTC
// timestamps down to their date.
func formatWindow(tr *ncexplorer.TimeRange) string {
	if tr == nil {
		return ""
	}
	return shortTime(tr.Start) + ".." + shortTime(tr.End)
}

func shortTime(s string) string {
	if strings.HasSuffix(s, "T00:00:00Z") {
		return strings.TrimSuffix(s, "T00:00:00Z")
	}
	return s
}

// current returns the live session snapshot, if a session is open.
func (sh *shell) current() (session.Snapshot, bool) {
	if sh.id == "" {
		return session.Snapshot{}, false
	}
	snap, err := sh.sessions.Get(sh.id)
	if err != nil {
		return session.Snapshot{}, false
	}
	return snap, true
}

// pattern resolves the concepts a query command should run on: its
// arguments when present, the session pattern otherwise.
func (sh *shell) pattern(rest string) ([]string, bool) {
	if rest != "" {
		return splitConcepts(rest), true
	}
	if snap, ok := sh.current(); ok {
		return snap.Concepts, true
	}
	fmt.Println("no open session — use 'open <concept> ; <concept>' or pass concepts inline")
	return nil, false
}

func (sh *shell) execute(line string) (quit bool) {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(cmd) {
	case "quit", "exit", "q":
		return true
	case "help", "?":
		fmt.Println(`commands:
  concepts <entity>       roll-up options for an entity, e.g. "concepts FTX"
  broader <concept>       parent concepts, e.g. "broader Bitcoin exchange"
  keywords <concept>      amplified keyword list for retrieval
  open <c1> ; <c2>        start (or replace) the exploration pattern
  rollup [<c1> ; <c2>]    top articles (current pattern when no args)
  drill [<c1> ; <c2>]     subtopic suggestions (current pattern when no args)
  refine <concept|N>      add a subtopic to the pattern (N = row from last drill)
  zoom <start>..<end>     restrict queries to a publication window
                          (dates or RFC3339, either side open; "zoom off" clears)
  trend [day|week|month]  per-period match histogram for the pattern
  back                    undo the last pattern change
  history                 the session's breadcrumb trail
  topics                  the paper's six evaluation queries
  save <dir>              persist the index (reload with -open <dir>)
  watch <c1> ; <c2>       register a standing query; alerts print live
                          (@N/D suffix: alert only on ≥N matches in D days)
  watchlists              list registered watchlists
  unwatch <id>            remove a watchlist
  feed <n>                ingest n sample articles (fires watch alerts)
  quit`)
	case "concepts":
		list, err := sh.x.ConceptsForEntity(rest)
		printList(list, err)
	case "broader":
		list, err := sh.x.BroaderConcepts(rest)
		printList(list, err)
	case "keywords":
		list, err := sh.x.TopicKeywords(rest, 10)
		printList(list, err)
	case "topics":
		for _, pair := range sh.x.EvaluationTopics() {
			fmt.Printf("  rollup %s ; %s\n", pair[0], pair[1])
		}
	case "open":
		sh.open(rest)
	case "save":
		if rest == "" {
			fmt.Println("usage: save <dir>")
			return
		}
		start := time.Now()
		if err := sh.x.Save(rest); err != nil {
			printError(err)
			return
		}
		fmt.Printf("saved snapshot to %s in %.1fs (generation %d, %d articles); reopen with -open %s\n",
			rest, time.Since(start).Seconds(), sh.x.Generation(), sh.x.NumArticles(), rest)
	case "watch":
		sh.watch(rest)
	case "watchlists":
		sh.watchlists()
	case "unwatch":
		sh.unwatch(rest)
	case "feed":
		sh.feed(rest)
	case "refine":
		sh.refine(rest)
	case "zoom":
		sh.zoom(rest)
	case "trend":
		sh.trend(rest)
	case "back":
		sh.back()
	case "history":
		sh.history()
	case "rollup":
		concepts, ok := sh.pattern(rest)
		if !ok {
			return
		}
		res, err := sh.x.RollUpQuery(context.Background(), ncexplorer.RollUpRequest{
			Concepts: concepts, K: 5, Explain: true, Time: sh.curWindow(),
		})
		if err != nil {
			printError(err)
			return
		}
		for i, a := range res.Articles {
			fmt.Printf("%d. [%.3f] (%s, %s) %s\n", i+1, a.Score, a.Source, shortTime(a.PublishedAt), a.Title)
			for _, e := range a.Explanations {
				fmt.Printf("     %-28s cdr=%.3f via %s\n", e.Concept, e.CDR, e.Pivot)
			}
		}
		if len(res.Articles) == 0 {
			fmt.Println("no matching articles")
		}
	case "drill":
		concepts, ok := sh.pattern(rest)
		if !ok {
			return
		}
		// "refine N" must always refer to suggestions for the session's
		// own pattern, so stale or inline-query output never feeds it:
		// the numbered list is cleared up front and repopulated only
		// when this drill ran on the session pattern.
		sh.lastSubs = nil
		dres, err := sh.x.DrillDownQuery(context.Background(), ncexplorer.DrillDownRequest{
			Concepts: concepts, K: 8, Explain: true, Time: sh.curWindow(),
		})
		if err != nil {
			printError(err)
			return
		}
		subs := dres.Suggestions
		forSession := rest == "" && sh.id != ""
		for i, s := range subs {
			if forSession {
				sh.lastSubs = append(sh.lastSubs, s.Concept)
			}
			fmt.Printf("%d. %-30s score=%.3f (coverage %.2f · specificity %.2f · diversity %.2f, %d docs)\n",
				i+1, s.Concept, s.Score, s.Coverage, s.Specificity, s.Diversity, s.MatchedDocs)
		}
		if len(subs) == 0 {
			fmt.Println("no subtopics")
		} else if forSession {
			fmt.Println("(refine <name|number> drills into one)")
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", cmd)
	}
	return false
}

// open starts a session on the given pattern, replacing the pattern of
// an already-open session (undoable with back).
func (sh *shell) open(rest string) {
	concepts := splitConcepts(rest)
	if len(concepts) == 0 {
		fmt.Println("usage: open <concept> ; <concept> ; …")
		return
	}
	if err := sh.x.ValidateConcepts(concepts); err != nil {
		printError(err)
		return
	}
	if sh.id != "" {
		if snap, err := sh.sessions.Set(sh.id, concepts); err == nil {
			fmt.Printf("pattern set to %s (step %d; 'back' undoes)\n",
				strings.Join(snap.Concepts, " ; "), len(snap.Steps))
			return
		}
		// The session expired or vanished; fall through to a fresh one.
	}
	snap := sh.sessions.Create(concepts)
	sh.id = snap.ID
	fmt.Printf("session %s opened on %s\n", snap.ID, strings.Join(snap.Concepts, " ; "))
}

// refine drills the session into a subtopic, by name or by the row
// number of the last drill output.
func (sh *shell) refine(rest string) {
	if sh.id == "" {
		fmt.Println("no open session — use 'open' first")
		return
	}
	if rest == "" {
		fmt.Println("usage: refine <concept>  (or refine <number> from the last drill)")
		return
	}
	concept := rest
	if n, err := strconv.Atoi(rest); err == nil {
		if n < 1 || n > len(sh.lastSubs) {
			fmt.Printf("no suggestion %d (last drill listed %d)\n", n, len(sh.lastSubs))
			return
		}
		concept = sh.lastSubs[n-1]
	}
	if err := sh.x.ValidateConcepts([]string{concept}); err != nil {
		printError(err)
		return
	}
	snap, err := sh.sessions.Refine(sh.id, concept)
	if err != nil {
		printError(err)
		return
	}
	fmt.Printf("pattern: %s\n", strings.Join(snap.Concepts, " ; "))
}

// zoom sets, clears, or shows the publication-time window. With a
// session open the window is stored as a navigation step (so `back`
// undoes it); otherwise it is shell-local.
func (sh *shell) zoom(rest string) {
	switch rest {
	case "":
		if win := formatWindow(sh.curWindow()); win != "" {
			fmt.Println("window:", win)
		} else {
			fmt.Println("no window — 'zoom <start>..<end>' sets one (dates or RFC3339, either side open)")
		}
		return
	case "off", "out", "clear":
		if sh.id != "" {
			if _, err := sh.sessions.Zoom(sh.id, nil); err != nil {
				printError(err)
				return
			}
		}
		sh.window = nil
		fmt.Println("window cleared")
		return
	}
	start, end, ok := strings.Cut(rest, "..")
	if !ok {
		fmt.Println("usage: zoom <start>..<end>  (either side may be empty; 'zoom off' clears)")
		return
	}
	tr := &ncexplorer.TimeRange{Start: expandTime(start), End: expandTime(end)}
	if err := ncexplorer.ValidateTimeRange(tr); err != nil {
		printError(err)
		return
	}
	if sh.id != "" {
		if _, err := sh.sessions.Zoom(sh.id, &session.Window{Start: tr.Start, End: tr.End}); err != nil {
			printError(err)
			return
		}
	} else {
		sh.window = tr
	}
	fmt.Printf("window: %s ('zoom off' clears, 'back' undoes)\n", formatWindow(tr))
}

// expandTime widens a bare date to its first instant so `zoom
// 2024-01-01..2024-03-01` works without spelling out RFC3339.
func expandTime(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if _, err := time.Parse("2006-01-02", s); err == nil {
		return s + "T00:00:00Z"
	}
	return s
}

// trend prints the per-period match histogram for the current pattern:
// the temporal roll-up with group_by, deltas, and rank movement.
func (sh *shell) trend(rest string) {
	gb := "week"
	if f := strings.Fields(rest); len(f) > 0 {
		switch strings.ToLower(f[0]) {
		case "day", "week", "month":
			gb = strings.ToLower(f[0])
			rest = strings.TrimSpace(strings.TrimPrefix(rest, f[0]))
		}
	}
	concepts, ok := sh.pattern(rest)
	if !ok {
		return
	}
	res, err := sh.x.RollUpQuery(context.Background(), ncexplorer.RollUpRequest{
		Concepts: concepts, K: 1, GroupBy: gb, Time: sh.curWindow(),
	})
	if err != nil {
		printError(err)
		return
	}
	if len(res.Periods) == 0 {
		fmt.Println("no matching articles")
		return
	}
	arrows := map[string]string{"up": "↑", "down": "↓", "flat": "→"}
	maxCount := 0
	for _, p := range res.Periods {
		if p.Count > maxCount {
			maxCount = p.Count
		}
	}
	for _, p := range res.Periods {
		bar := strings.Repeat("█", p.Count*24/maxCount)
		move := ""
		if p.RankDelta != 0 {
			move = fmt.Sprintf(" (%+d)", p.RankDelta)
		}
		fmt.Printf("%s  %-24s %4d  %s %+d  rank %d%s\n",
			shortTime(p.Start), bar, p.Count, arrows[p.Direction], p.Delta, p.Rank, move)
	}
	fmt.Printf("(%d matching articles per %s)\n", res.Total, gb)
}

func (sh *shell) back() {
	if sh.id == "" {
		fmt.Println("no open session")
		return
	}
	snap, err := sh.sessions.Back(sh.id)
	if err != nil {
		printError(err)
		return
	}
	fmt.Printf("pattern: %s\n", strings.Join(snap.Concepts, " ; "))
}

func (sh *shell) history() {
	snap, ok := sh.current()
	if !ok {
		fmt.Println("no open session")
		return
	}
	for i, st := range snap.Steps {
		op := string(st.Op)
		if st.Concept != "" {
			op += " " + st.Concept
		}
		where := strings.Join(st.Concepts, " ; ")
		if st.Window != nil {
			where += " | " + shortTime(st.Window.Start) + ".." + shortTime(st.Window.End)
		}
		fmt.Printf("%2d. %-24s → %s\n", i+1, op, where)
	}
	fmt.Printf("    (%d step(s) undoable)\n", snap.Depth)
}

// watch registers a standing query on the given pattern and starts a
// printer goroutine: every time `feed` (or any other ingest) commits a
// matching article, the alert prints in place, with the same score and
// evidence a rollup would report.
func (sh *shell) watch(rest string) {
	spec := ncexplorer.WatchlistSpec{}
	// A trailing @N/D token sets the burst threshold: alert only once
	// ≥N matches were published within D days.
	if at := strings.LastIndex(rest, "@"); at >= 0 {
		var n, d int
		if c, err := fmt.Sscanf(rest[at:], "@%d/%d", &n, &d); c == 2 && err == nil && n > 0 && d > 0 {
			spec.WindowCount, spec.WindowDays = n, d
			rest = strings.TrimSpace(rest[:at])
		}
	}
	concepts := splitConcepts(rest)
	if len(concepts) == 0 {
		fmt.Println("usage: watch <concept> ; <concept> ; … [@N/D]")
		return
	}
	spec.Concepts = concepts
	wl, err := sh.x.RegisterWatchlist(spec)
	if err != nil {
		printError(err)
		return
	}
	sub, err := sh.x.WatchSubscribe(wl.ID, 0)
	if err != nil {
		printError(err)
		return
	}
	sh.watchSubs[wl.ID] = sub
	go func() {
		for a := range sub.C {
			fmt.Printf("\n⚑ %s #%d gen %d: [%.3f] (%s) %s\n",
				a.Watchlist, a.Seq, a.Generation, a.Article.Score, a.Article.Source, a.Article.Title)
			for _, e := range a.Article.Explanations {
				fmt.Printf("     %-28s cdr=%.3f via %s\n", e.Concept, e.CDR, e.Pivot)
			}
		}
	}()
	burst := ""
	if wl.WindowCount > 0 {
		burst = fmt.Sprintf(", alerting on ≥%d matches in %d days", wl.WindowCount, wl.WindowDays)
	}
	fmt.Printf("watchlist %s registered on %s (from generation %d%s); 'feed <n>' ingests sample articles\n",
		wl.ID, strings.Join(wl.Concepts, " ; "), wl.CreatedGeneration, burst)
}

func (sh *shell) watchlists() {
	lists := sh.x.ListWatchlists()
	if len(lists) == 0 {
		fmt.Println("(none — 'watch <concept>' registers one)")
		return
	}
	for _, wl := range lists {
		fmt.Printf("  %s  %-40s alerts=%d from-gen=%d\n",
			wl.ID, strings.Join(wl.Concepts, " ; "), wl.LastSeq, wl.CreatedGeneration)
	}
}

func (sh *shell) unwatch(rest string) {
	if rest == "" {
		fmt.Println("usage: unwatch <id>  (IDs from 'watchlists')")
		return
	}
	if err := sh.x.RemoveWatchlist(rest); err != nil {
		printError(err)
		return
	}
	// Removal closed the subscription channel; the printer goroutine has
	// already exited.
	delete(sh.watchSubs, rest)
	fmt.Printf("watchlist %s removed\n", rest)
}

// feed ingests n synthesised sample articles — the in-shell stand-in
// for a live news feed, and the way to see watch alerts fire.
func (sh *shell) feed(rest string) {
	n := 10
	if rest != "" {
		v, err := strconv.Atoi(rest)
		if err != nil || v <= 0 {
			fmt.Println("usage: feed [<n>] — a positive article count")
			return
		}
		n = v
	}
	sh.feedSeed++
	arts, err := sh.x.SampleArticles(sh.feedSeed, n)
	if err != nil {
		printError(err)
		return
	}
	res, err := sh.x.Ingest(context.Background(), arts)
	if err != nil {
		printError(err)
		return
	}
	fmt.Printf("ingested %d articles (generation %d, %d total)\n",
		res.Accepted, res.Generation, res.TotalArticles)
	// Let watch printers drain before the next prompt: alerts were
	// published synchronously by the ingest, but their goroutines only
	// print when scheduled — a piped session on one CPU would otherwise
	// reach the next command (or exit) first and swallow them.
	if len(sh.watchSubs) > 0 {
		time.Sleep(20 * time.Millisecond)
	}
}

func splitConcepts(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// printError surfaces typed facade errors with their suggestions.
func printError(err error) {
	fmt.Println("error:", err)
	if e, ok := ncexplorer.AsError(err); ok {
		if sugg, ok := e.Details["suggestions"].([]string); ok && len(sugg) > 0 {
			fmt.Printf("did you mean: %s?\n", strings.Join(sugg, ", "))
		}
	}
}

func printList(list []string, err error) {
	if err != nil {
		printError(err)
		return
	}
	if len(list) == 0 {
		fmt.Println("(none)")
		return
	}
	for _, item := range list {
		fmt.Println("  " + item)
	}
}
