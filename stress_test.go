package ncexplorer

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelQueryDeterminism is the lock-free engine's contract
// test: N goroutines hammer one Explorer with a mixed
// RollUp/DrillDown/TopicKeywords workload over cold caches —
// overlapping queries (every goroutine runs the shared pool, in a
// different order, so concurrent misses on one key must coalesce) and
// disjoint ones (each goroutine owns a private slice of queries no one
// else touches) — and every response must be byte-identical to the
// serial run. Run with -race: this test is also the data-race probe
// for the whole facade→engine→scorer path.
func TestParallelQueryDeterminism(t *testing.T) {
	x := getExplorer(t)

	type op struct {
		name string
		run  func() (any, error)
	}
	var shared []op
	addQuery := func(concepts ...string) {
		shared = append(shared,
			op{name: "rollup", run: func() (any, error) { return x.RollUp(concepts, 10) }},
			op{name: "drilldown", run: func() (any, error) { return x.DrillDown(concepts, 8) }},
		)
	}
	topics := x.EvaluationTopics()
	if len(topics) == 0 {
		t.Fatal("no evaluation topics")
	}
	for _, tp := range topics {
		addQuery(tp[0], tp[1]) // two-concept pattern
		addQuery(tp[0])        // single concept
		group := tp[1]
		shared = append(shared, op{
			name: "keywords",
			run:  func() (any, error) { return x.TopicKeywords(group, 6) },
		})
	}

	// Disjoint pool: concepts only one goroutine will ever query, drawn
	// from drill-down suggestions so they exist and match documents.
	subs, err := x.DrillDown([]string{topics[0][0]}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var disjoint []op
	for _, s := range subs {
		c := s.Concept
		disjoint = append(disjoint,
			op{name: "rollup-disjoint", run: func() (any, error) { return x.RollUp([]string{c}, 5) }},
			op{name: "keywords-disjoint", run: func() (any, error) { return x.TopicKeywords(c, 4) }},
		)
	}

	all := append(append([]op(nil), shared...), disjoint...)
	marshal := func(o op) ([]byte, error) {
		v, err := o.run()
		if err != nil {
			return nil, err
		}
		return json.Marshal(v)
	}

	// Serial reference pass over cold caches.
	x.ResetQueryCaches()
	want := make([][]byte, len(all))
	for i, o := range all {
		b, err := marshal(o)
		if err != nil {
			t.Fatalf("serial %s: %v", o.name, err)
		}
		want[i] = b
	}

	// Parallel pass, cold again.
	x.ResetQueryCaches()
	const goroutines = 8
	const reps = 3
	var wg sync.WaitGroup
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			check := func(i int) {
				got, err := marshal(all[i])
				if err != nil {
					fail("goroutine %d op %d (%s): %v", w, i, all[i].name, err)
					return
				}
				if !bytes.Equal(got, want[i]) {
					fail("goroutine %d op %d (%s): parallel result diverges from serial\n got: %s\nwant: %s",
						w, i, all[i].name, got, want[i])
				}
			}
			for rep := 0; rep < reps; rep++ {
				// Overlapping: every goroutine covers the shared ops in
				// its own rotation, so distinct goroutines collide on
				// cold keys in different interleavings each rep.
				for j := range shared {
					check((j*7 + w*13 + rep*5) % len(shared))
				}
				// Disjoint: ops owned by exactly one goroutine.
				for j := len(shared) + w; j < len(all); j += goroutines {
					check(j)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentIngestQueryConsistency is the live-ingestion contract
// test (run it with -race): queries hammering an Explorer while
// batches are ingested — and while background segment merges run —
// must return results byte-identical to a reference Explorer that
// reached the same generation by serial ingestion. Every response is
// stamped with the generation it was served from; a response mixing
// generations, or diverging from the reference at its own generation,
// fails the test.
func TestConcurrentIngestQueryConsistency(t *testing.T) {
	const (
		nBatches  = 3
		batchSize = 15
		workers   = 6
	)
	build := func(maxSegments int) *Explorer {
		x, err := New(Config{Scale: "tiny", MaxSegments: maxSegments})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	// The live explorer merges aggressively (MaxSegments 2) so merges
	// overlap the query traffic; the reference never merges. Merge
	// invariance is part of what this equality proves.
	live := build(2)
	ref := build(100)

	batches := make([][]IngestArticle, nBatches)
	for i := range batches {
		arts, err := live.SampleArticles(9100+uint64(i), batchSize)
		if err != nil {
			t.Fatal(err)
		}
		batches[i] = arts
	}

	// Query set: the evaluation topics, paged and mixed.
	topics := live.EvaluationTopics()
	var rollups []RollUpRequest
	var drills []DrillDownRequest
	for _, tp := range topics {
		rollups = append(rollups,
			RollUpRequest{Concepts: []string{tp[0], tp[1]}, K: 6, Explain: true},
			RollUpRequest{Concepts: []string{tp[0]}, K: 4, Offset: 2})
		drills = append(drills, DrillDownRequest{Concepts: []string{tp[0]}, K: 6, Explain: true})
	}
	ctx := context.Background()

	// Reference answers per generation, computed by serial ingestion.
	type expectation struct {
		rollups [][]byte
		drills  [][]byte
	}
	expected := make(map[uint64]expectation)
	record := func() {
		exp := expectation{}
		for _, req := range rollups {
			res, err := ref.RollUpQuery(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			exp.rollups = append(exp.rollups, b)
		}
		for _, req := range drills {
			res, err := ref.DrillDownQuery(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			exp.drills = append(exp.drills, b)
		}
		expected[ref.Generation()] = exp
	}
	record()
	for _, batch := range batches {
		if _, err := ref.Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
		record()
	}

	// Live phase: workers query continuously while the main goroutine
	// ingests every batch.
	var (
		stop     atomic.Bool
		seenGens sync.Map // generation → true
		mu       sync.Mutex
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	check := func(w, rep int) {
		i := (w*7 + rep) % len(rollups)
		res, err := live.RollUpQuery(ctx, rollups[i])
		if err != nil {
			fail("worker %d rollup %d: %v", w, i, err)
			return
		}
		got, _ := json.Marshal(res)
		exp, ok := expected[res.Generation]
		if !ok {
			fail("worker %d observed unknown generation %d", w, res.Generation)
			return
		}
		seenGens.Store(res.Generation, true)
		if !bytes.Equal(got, exp.rollups[i]) {
			fail("worker %d rollup %d at generation %d diverges from serial reference\n got: %s\nwant: %s",
				w, i, res.Generation, got, exp.rollups[i])
		}
		j := (w*5 + rep) % len(drills)
		dres, err := live.DrillDownQuery(ctx, drills[j])
		if err != nil {
			fail("worker %d drilldown %d: %v", w, j, err)
			return
		}
		dgot, _ := json.Marshal(dres)
		dexp, ok := expected[dres.Generation]
		if !ok {
			fail("worker %d observed unknown generation %d", w, dres.Generation)
			return
		}
		if !bytes.Equal(dgot, dexp.drills[j]) {
			fail("worker %d drilldown %d at generation %d diverges from serial reference",
				w, j, dres.Generation)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; !stop.Load(); rep++ {
				check(w, rep)
			}
		}(w)
	}
	for _, batch := range batches {
		if _, err := live.Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	live.Quiesce() // let merges overlap the tail of the query traffic
	stop.Store(true)
	wg.Wait()

	// The final generation must be queryable and byte-identical too.
	finalGen := uint64(1 + nBatches)
	if live.Generation() != finalGen || ref.Generation() != finalGen {
		t.Fatalf("generations: live %d, ref %d, want %d", live.Generation(), ref.Generation(), finalGen)
	}
	for i, req := range rollups {
		res, err := live.RollUpQuery(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Generation != finalGen {
			t.Fatalf("post-ingest query served at generation %d, want %d", res.Generation, finalGen)
		}
		got, _ := json.Marshal(res)
		if !bytes.Equal(got, expected[finalGen].rollups[i]) {
			t.Fatalf("final rollup %d diverges from serial reference", i)
		}
	}
	if _, ok := seenGens.Load(uint64(1)); !ok {
		t.Log("note: no worker observed generation 1 (ingest outran the first queries)")
	}
}
