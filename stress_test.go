package ncexplorer

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestParallelQueryDeterminism is the lock-free engine's contract
// test: N goroutines hammer one Explorer with a mixed
// RollUp/DrillDown/TopicKeywords workload over cold caches —
// overlapping queries (every goroutine runs the shared pool, in a
// different order, so concurrent misses on one key must coalesce) and
// disjoint ones (each goroutine owns a private slice of queries no one
// else touches) — and every response must be byte-identical to the
// serial run. Run with -race: this test is also the data-race probe
// for the whole facade→engine→scorer path.
func TestParallelQueryDeterminism(t *testing.T) {
	x := getExplorer(t)

	type op struct {
		name string
		run  func() (any, error)
	}
	var shared []op
	addQuery := func(concepts ...string) {
		shared = append(shared,
			op{name: "rollup", run: func() (any, error) { return x.RollUp(concepts, 10) }},
			op{name: "drilldown", run: func() (any, error) { return x.DrillDown(concepts, 8) }},
		)
	}
	topics := x.EvaluationTopics()
	if len(topics) == 0 {
		t.Fatal("no evaluation topics")
	}
	for _, tp := range topics {
		addQuery(tp[0], tp[1]) // two-concept pattern
		addQuery(tp[0])        // single concept
		group := tp[1]
		shared = append(shared, op{
			name: "keywords",
			run:  func() (any, error) { return x.TopicKeywords(group, 6) },
		})
	}

	// Disjoint pool: concepts only one goroutine will ever query, drawn
	// from drill-down suggestions so they exist and match documents.
	subs, err := x.DrillDown([]string{topics[0][0]}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var disjoint []op
	for _, s := range subs {
		c := s.Concept
		disjoint = append(disjoint,
			op{name: "rollup-disjoint", run: func() (any, error) { return x.RollUp([]string{c}, 5) }},
			op{name: "keywords-disjoint", run: func() (any, error) { return x.TopicKeywords(c, 4) }},
		)
	}

	all := append(append([]op(nil), shared...), disjoint...)
	marshal := func(o op) ([]byte, error) {
		v, err := o.run()
		if err != nil {
			return nil, err
		}
		return json.Marshal(v)
	}

	// Serial reference pass over cold caches.
	x.ResetQueryCaches()
	want := make([][]byte, len(all))
	for i, o := range all {
		b, err := marshal(o)
		if err != nil {
			t.Fatalf("serial %s: %v", o.name, err)
		}
		want[i] = b
	}

	// Parallel pass, cold again.
	x.ResetQueryCaches()
	const goroutines = 8
	const reps = 3
	var wg sync.WaitGroup
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			check := func(i int) {
				got, err := marshal(all[i])
				if err != nil {
					fail("goroutine %d op %d (%s): %v", w, i, all[i].name, err)
					return
				}
				if !bytes.Equal(got, want[i]) {
					fail("goroutine %d op %d (%s): parallel result diverges from serial\n got: %s\nwant: %s",
						w, i, all[i].name, got, want[i])
				}
			}
			for rep := 0; rep < reps; rep++ {
				// Overlapping: every goroutine covers the shared ops in
				// its own rotation, so distinct goroutines collide on
				// cold keys in different interleavings each rep.
				for j := range shared {
					check((j*7 + w*13 + rep*5) % len(shared))
				}
				// Disjoint: ops owned by exactly one goroutine.
				for j := len(shared) + w; j < len(all); j += goroutines {
					check(j)
				}
			}
		}(w)
	}
	wg.Wait()
}
