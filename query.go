package ncexplorer

import (
	"context"
	"math"
	"sort"
	"strings"
	"time"

	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/qcache"
)

// RollUpRequest is a typed roll-up query: the concept pattern plus the
// paging, filtering, and explanation controls of the v2 API. The JSON
// tags match the /v2/query/rollup request body.
type RollUpRequest struct {
	// Concepts is the concept pattern; every result matches all of them.
	Concepts []string `json:"concepts"`
	// K is the page size. It must be positive; RollUpQuery rejects
	// K <= 0 with CodeInvalidArgument (HTTP callers get a default
	// applied by the server before the request reaches the facade).
	K int `json:"k"`
	// Offset skips the first Offset ranked results (pagination).
	Offset int `json:"offset,omitempty"`
	// Sources restricts results to these source names (e.g. "reuters");
	// empty admits every source.
	Sources []string `json:"sources,omitempty"`
	// MinScore excludes articles scoring below it when > 0.
	MinScore float64 `json:"min_score,omitempty"`
	// Time restricts results to articles published inside the range
	// (inclusive RFC3339 bounds, either side open); nil admits every
	// publication time.
	Time *TimeRange `json:"time_range,omitempty"`
	// GroupBy additionally buckets matches by publication period —
	// "day", "week" (Monday-start, UTC) or "month" — into
	// RollUpResult.Periods with trend annotations. Empty disables.
	GroupBy string `json:"group_by,omitempty"`
	// Explain includes per-concept explanations in each article.
	Explain bool `json:"explain,omitempty"`
}

// TimeRange is the wire form of a publication-time filter: inclusive
// RFC3339 bounds, either side optional (empty = open).
type TimeRange struct {
	Start string `json:"start,omitempty"`
	End   string `json:"end,omitempty"`
}

// RollUpResult is one page of roll-up results with the pagination
// cursor a client needs to continue: Total matches behind the filters
// and NextOffset (-1 once the listing is exhausted). Generation is
// the index snapshot the whole page was served from — queries pin one
// generation end-to-end, so a page never mixes pre- and post-ingest
// state.
type RollUpResult struct {
	Query      []string  `json:"query"`
	K          int       `json:"k"`
	Offset     int       `json:"offset"`
	Total      int       `json:"total"`
	NextOffset int       `json:"next_offset"`
	Generation uint64    `json:"generation"`
	Articles   []Article `json:"articles"`
	// Periods is the per-period match histogram when the request set
	// GroupBy: ascending period starts, counts summing to Total, each
	// bucket annotated with its trend versus the previous calendar
	// period.
	Periods []Period `json:"periods,omitempty"`
}

// Period is one bucket of a grouped roll-up. Trend fields compare the
// bucket to the immediately preceding *calendar* period: a gap in the
// listing means that period had zero matches, so Delta is measured
// against zero across gaps.
type Period struct {
	// Start is the period's first instant, RFC3339 UTC.
	Start string `json:"start"`
	// Count is the number of matching articles published in the period.
	Count int `json:"count"`
	// Delta is Count minus the previous calendar period's count.
	Delta int `json:"delta"`
	// Direction summarises Delta: "up", "down", or "flat".
	Direction string `json:"direction"`
	// Rank orders the page's periods by Count descending (ties broken
	// by earlier start), 1-based — "the busiest period is rank 1".
	Rank int `json:"rank"`
	// RankDelta is the previous calendar period's rank minus this
	// one's (positive = climbed). Zero when the previous period is
	// absent from the listing.
	RankDelta int `json:"rank_delta"`
}

// DrillDownRequest is a typed drill-down query. The JSON tags match
// the /v2/query/drilldown request body.
type DrillDownRequest struct {
	// Concepts is the concept pattern being refined.
	Concepts []string `json:"concepts"`
	// K is the page size; K <= 0 is rejected with CodeInvalidArgument.
	K int `json:"k"`
	// Offset skips the first Offset ranked suggestions.
	Offset int `json:"offset,omitempty"`
	// MinScore excludes suggestions scoring below it when > 0.
	MinScore float64 `json:"min_score,omitempty"`
	// Time restricts the articles feeding coverage, specificity and
	// diversity to those published inside the range; nil admits all.
	Time *TimeRange `json:"time_range,omitempty"`
	// Explain includes the score components (coverage, specificity,
	// diversity) in each suggestion; without it only concept, score and
	// matched_docs are populated.
	Explain bool `json:"explain,omitempty"`
}

// DrillDownResult is one page of subtopic suggestions with the same
// pagination cursor as RollUpResult. Total counts the *rankable*
// suggestions — the engine scores a shortlist of max(128, K)
// candidates independent of Offset, so pages of a fixed-K listing
// are mutually consistent and the cursor ends at the window edge.
type DrillDownResult struct {
	Query       []string             `json:"query"`
	K           int                  `json:"k"`
	Offset      int                  `json:"offset"`
	Total       int                  `json:"total"`
	NextOffset  int                  `json:"next_offset"`
	Generation  uint64               `json:"generation"`
	Suggestions []SubtopicSuggestion `json:"suggestions"`
}

// Key returns the canonical cache key of the request: every field that
// can change the response participates, so paginated and filtered
// variants of one concept pattern occupy distinct cache entries.
func (r RollUpRequest) Key() string {
	var kb qcache.KeyBuilder
	kb.Str("rollup2").Int(r.K).Int(r.Offset).Float(r.MinScore).Bool(r.Explain)
	keyTime(&kb, r.Time)
	kb.Str(strings.ToLower(strings.TrimSpace(r.GroupBy)))
	kb.Strs(canonicalSources(r.Sources))
	kb.Strs(CanonicalConcepts(r.Concepts))
	return kb.String()
}

// Key returns the canonical cache key of the request.
func (r DrillDownRequest) Key() string {
	var kb qcache.KeyBuilder
	kb.Str("drilldown2").Int(r.K).Int(r.Offset).Float(r.MinScore).Bool(r.Explain)
	keyTime(&kb, r.Time)
	kb.Strs(CanonicalConcepts(r.Concepts))
	return kb.String()
}

// keyTime folds a time filter into a cache key. Bounds are folded as
// parsed instants when they parse (equivalent RFC3339 spellings of one
// instant share a cache entry) and as raw strings otherwise — a
// malformed range still occupies a distinct key, it just never caches
// a success.
func keyTime(kb *qcache.KeyBuilder, tr *TimeRange) {
	if tr == nil {
		kb.Str("")
		return
	}
	fold := func(s string) {
		if s == "" {
			kb.Str("")
			return
		}
		if t, err := time.Parse(time.RFC3339, s); err == nil {
			kb.Int(int(t.Unix()))
			return
		}
		kb.Str(s)
	}
	kb.Str("t")
	fold(tr.Start)
	fold(tr.End)
}

// canonicalSources trims, dedupes, lowercases and sorts source names.
func canonicalSources(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	out := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SourceNames lists the valid Sources filter values.
func SourceNames() []string {
	out := make([]string, 0, len(corpus.Sources))
	for _, s := range corpus.Sources {
		out = append(out, s.String())
	}
	return out
}

// resolveSources maps source names to corpus sources, rejecting
// unknown names with a typed error that lists the valid values.
func resolveSources(names []string) ([]corpus.Source, error) {
	names = canonicalSources(names)
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]corpus.Source, 0, len(names))
	for _, n := range names {
		found := false
		for _, s := range corpus.Sources {
			if s.String() == n {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			e := newErrorf(CodeInvalidArgument, "ncexplorer: unknown source %q", n)
			e.Details = map[string]any{"source": n, "valid_sources": SourceNames()}
			return nil, e
		}
	}
	return out, nil
}

// validatePage rejects the request shapes every typed query refuses:
// non-positive page size, negative offset, negative score floor.
func validatePage(k, offset int, minScore float64) error {
	if k <= 0 {
		return newErrorf(CodeInvalidArgument, "ncexplorer: invalid k %d: want a positive integer", k)
	}
	if offset < 0 {
		return newErrorf(CodeInvalidArgument, "ncexplorer: invalid offset %d: want a non-negative integer", offset)
	}
	if minScore < 0 {
		return newErrorf(CodeInvalidArgument, "ncexplorer: invalid min_score %g: want a non-negative number", minScore)
	}
	return nil
}

// resolveTimeRange validates the wire time filter and converts it to
// the engine's Unix-seconds range: non-RFC3339 bounds and inverted
// ranges are rejected with CodeInvalidArgument; an absent side is
// open. A nil or completely empty range means no filter.
func resolveTimeRange(tr *TimeRange) (*core.TimeRange, error) {
	if tr == nil || (tr.Start == "" && tr.End == "") {
		return nil, nil
	}
	out := &core.TimeRange{Min: math.MinInt64, Max: math.MaxInt64}
	if tr.Start != "" {
		t, err := time.Parse(time.RFC3339, tr.Start)
		if err != nil {
			e := newErrorf(CodeInvalidArgument,
				"ncexplorer: invalid time_range.start %q: want RFC3339 (e.g. 2023-09-04T08:00:00Z)", tr.Start)
			e.Details = map[string]any{"start": tr.Start}
			return nil, e
		}
		out.Min = t.Unix()
	}
	if tr.End != "" {
		t, err := time.Parse(time.RFC3339, tr.End)
		if err != nil {
			e := newErrorf(CodeInvalidArgument,
				"ncexplorer: invalid time_range.end %q: want RFC3339 (e.g. 2023-09-04T08:00:00Z)", tr.End)
			e.Details = map[string]any{"end": tr.End}
			return nil, e
		}
		out.Max = t.Unix()
	}
	if out.Min > out.Max {
		e := newErrorf(CodeInvalidArgument,
			"ncexplorer: invalid time_range: start %s is after end %s", tr.Start, tr.End)
		e.Details = map[string]any{"start": tr.Start, "end": tr.End}
		return nil, e
	}
	return out, nil
}

// ValidateTimeRange checks a wire time filter without running a query
// — the session layer vets zoom windows with the same rulebook the
// query endpoints apply (RFC3339 bounds, start ≤ end).
func ValidateTimeRange(tr *TimeRange) error {
	_, err := resolveTimeRange(tr)
	return err
}

// ResolveTimeRange converts a wire time range to the engine's filter
// form — the internal scatter endpoints resolve the router-sent window
// with it before invoking the core partial queries.
func ResolveTimeRange(tr *TimeRange) (*core.TimeRange, error) {
	return resolveTimeRange(tr)
}

// ValidateGroupBy checks a wire group_by value without running a query
// — the router mirrors the facade's validation order with it.
func ValidateGroupBy(name string) error {
	_, err := resolveGroupBy(name)
	return err
}

// MergePeriods merges per-shard period histograms associatively: equal
// period starts sum their counts (shards are document-disjoint, so the
// sums equal a monolithic engine's buckets), and the trend annotations
// are recomputed over the merged listing with the same arithmetic
// buildPeriods applies locally. groupBy must be a valid non-empty
// group_by value — the router validates before scattering.
func MergePeriods(groupBy string, lists [][]Period) []Period {
	gb, err := resolveGroupBy(groupBy)
	if err != nil || gb == core.GroupNone {
		return nil
	}
	counts := make(map[int64]int)
	for _, list := range lists {
		for _, p := range list {
			t, err := time.Parse(time.RFC3339, p.Start)
			if err != nil {
				continue // shards never emit unparsable starts
			}
			counts[t.Unix()] += p.Count
		}
	}
	if len(counts) == 0 {
		return nil
	}
	buckets := make([]core.PeriodBucket, 0, len(counts))
	for s, n := range counts {
		buckets = append(buckets, core.PeriodBucket{Start: s, Count: n})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Start < buckets[j].Start })
	return buildPeriods(gb, buckets)
}

// groupByNames lists the valid group_by values.
var groupByNames = []string{"day", "week", "month"}

// resolveGroupBy maps the wire group_by value to the engine's enum,
// rejecting unknown values with a typed error listing the valid ones.
func resolveGroupBy(name string) (core.GroupBy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "":
		return core.GroupNone, nil
	case "day":
		return core.GroupDay, nil
	case "week":
		return core.GroupWeek, nil
	case "month":
		return core.GroupMonth, nil
	default:
		e := newErrorf(CodeInvalidArgument, "ncexplorer: unknown group_by %q", name)
		e.Details = map[string]any{"group_by": name, "valid_group_by": groupByNames}
		return core.GroupNone, e
	}
}

// buildPeriods renders the engine's period buckets with trend
// annotations: delta and direction versus the previous calendar
// period (zero-count across listing gaps), and rank movement within
// the page. Buckets arrive ascending by start and leave in that order.
func buildPeriods(gb core.GroupBy, buckets []core.PeriodBucket) []Period {
	if len(buckets) == 0 {
		return nil
	}
	// Rank by count descending, earlier start breaking ties.
	order := make([]int, len(buckets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ba, bb := buckets[order[a]], buckets[order[b]]
		if ba.Count != bb.Count {
			return ba.Count > bb.Count
		}
		return ba.Start < bb.Start
	})
	rank := make([]int, len(buckets))
	for pos, idx := range order {
		rank[idx] = pos + 1
	}
	out := make([]Period, len(buckets))
	for i, b := range buckets {
		p := Period{
			Start: time.Unix(b.Start, 0).UTC().Format(time.RFC3339),
			Count: b.Count,
			Delta: b.Count, // vs an empty previous period, unless adjacent below
			Rank:  rank[i],
		}
		if i > 0 && gb.Next(buckets[i-1].Start) == b.Start {
			p.Delta = b.Count - buckets[i-1].Count
			p.RankDelta = rank[i-1] - rank[i]
		}
		switch {
		case p.Delta > 0:
			p.Direction = "up"
		case p.Delta < 0:
			p.Direction = "down"
		default:
			p.Direction = "flat"
		}
		out[i] = p
	}
	return out
}

// nextOffset computes the pagination cursor: the offset of the page
// after this one, or -1 once the listing is exhausted.
func nextOffset(offset, returned, total int) int {
	if n := offset + returned; n < total && returned > 0 {
		return n
	}
	return -1
}

// RollUpQuery is the typed, context-aware roll-up: pagination via
// Offset, source and score filters, optional explanations, and
// cancellation through ctx (a cancelled query returns CodeCancelled /
// CodeDeadlineExceeded and stops consuming engine work). The concept
// pattern is canonicalized before execution, so permutations of one
// pattern produce identical results.
func (x *Explorer) RollUpQuery(ctx context.Context, req RollUpRequest) (RollUpResult, error) {
	if err := validatePage(req.K, req.Offset, req.MinScore); err != nil {
		return RollUpResult{}, err
	}
	sources, err := resolveSources(req.Sources)
	if err != nil {
		return RollUpResult{}, err
	}
	tr, err := resolveTimeRange(req.Time)
	if err != nil {
		return RollUpResult{}, err
	}
	gb, err := resolveGroupBy(req.GroupBy)
	if err != nil {
		return RollUpResult{}, err
	}
	concepts := CanonicalConcepts(req.Concepts)
	q, err := x.resolveConcepts(concepts)
	if err != nil {
		return RollUpResult{}, err
	}
	page, err := x.engine.RollUpPage(ctx, q, core.RollUpOptions{
		K: req.K, Offset: req.Offset, Sources: sources, MinScore: req.MinScore,
		Time: tr, GroupBy: gb,
	})
	if err != nil {
		return RollUpResult{}, ctxError(err)
	}
	articles := make([]Article, 0, len(page.Results))
	for _, r := range page.Results {
		articles = append(articles, x.article(r, req.Explain))
	}
	return RollUpResult{
		Query:      concepts,
		K:          req.K,
		Offset:     req.Offset,
		Total:      page.Total,
		NextOffset: nextOffset(req.Offset, len(articles), page.Total),
		Generation: page.Generation,
		Articles:   articles,
		Periods:    buildPeriods(gb, page.Periods),
	}, nil
}

// DrillDownQuery is the typed, context-aware drill-down — the
// suggestion side of RollUpQuery with the same pagination and
// cancellation contract.
func (x *Explorer) DrillDownQuery(ctx context.Context, req DrillDownRequest) (DrillDownResult, error) {
	if err := validatePage(req.K, req.Offset, req.MinScore); err != nil {
		return DrillDownResult{}, err
	}
	tr, err := resolveTimeRange(req.Time)
	if err != nil {
		return DrillDownResult{}, err
	}
	concepts := CanonicalConcepts(req.Concepts)
	q, err := x.resolveConcepts(concepts)
	if err != nil {
		return DrillDownResult{}, err
	}
	page, err := x.engine.DrillDownPage(ctx, q, core.DrillDownOptions{
		K: req.K, Offset: req.Offset, MinScore: req.MinScore, Time: tr,
	})
	if err != nil {
		return DrillDownResult{}, ctxError(err)
	}
	subs := make([]SubtopicSuggestion, 0, len(page.Results))
	for _, s := range page.Results {
		sub := SubtopicSuggestion{
			Concept:     x.g.Name(s.Concept),
			Score:       s.Score,
			MatchedDocs: s.MatchedDocs,
		}
		if req.Explain {
			sub.Coverage = s.Coverage
			sub.Specificity = s.Specificity
			sub.Diversity = s.Diversity
		}
		subs = append(subs, sub)
	}
	return DrillDownResult{
		Query:       concepts,
		K:           req.K,
		Offset:      req.Offset,
		Total:       page.Total,
		NextOffset:  nextOffset(req.Offset, len(subs), page.Total),
		Generation:  page.Generation,
		Suggestions: subs,
	}, nil
}

// article converts one engine result, attaching explanations only when
// requested. Display data is read through the engine's snapshot:
// documents are append-only and immutable, so the article is identical
// in every generation that contains it.
func (x *Explorer) article(r core.DocResult, explain bool) Article {
	d := x.engine.Doc(r.Doc)
	art := Article{
		ID:          int(r.Doc),
		Source:      d.Source.String(),
		Title:       d.Title,
		Body:        d.Body,
		Score:       r.Score,
		PublishedAt: time.Unix(d.PublishedAt, 0).UTC().Format(time.RFC3339),
	}
	if !explain {
		return art
	}
	for _, cc := range r.Contributors {
		expl := Explanation{Concept: x.g.Name(cc.Concept), CDR: cc.CDR}
		if cc.Pivot >= 0 {
			expl.Pivot = x.g.Name(cc.Pivot)
		}
		art.Explanations = append(art.Explanations, expl)
	}
	return art
}

// ValidateConcepts checks that every name resolves to a known concept,
// returning the same typed errors (with nearest-concept suggestions)
// as the query methods. The session layer uses it to vet patterns
// before storing them.
func (x *Explorer) ValidateConcepts(names []string) error {
	_, err := x.resolveConcepts(CanonicalConcepts(names))
	return err
}

// Parallelism reports the engine's worker budget — the bound the batch
// endpoint uses to execute independent queries concurrently without
// oversubscribing the engine's own intra-query helpers.
func (x *Explorer) Parallelism() int {
	return x.engine.Options().Workers
}

// maxSuggestions bounds the nearest-concept list attached to
// unknown-concept errors.
const maxSuggestions = 5

// SuggestConcepts returns up to n concept names nearest to name:
// case-insensitive exact and substring matches first, then small
// edit-distance neighbours — the "did you mean" list behind
// CodeUnknownConcept errors.
func (x *Explorer) SuggestConcepts(name string, n int) []string {
	return suggestConceptsOn(x.g, name, n)
}

// suggestConceptsOn is SuggestConcepts over an explicit graph (shared
// with QueryWorld).
func suggestConceptsOn(g *kg.Graph, name string, n int) []string {
	if n <= 0 || strings.TrimSpace(name) == "" {
		return nil
	}
	needle := strings.ToLower(strings.TrimSpace(name))
	// Edit-distance budget: generous enough for typos, tight enough
	// that short names don't match everything.
	maxDist := len(needle)/3 + 1
	type scored struct {
		name string
		rank int // lower is better
	}
	var cands []scored
	g.Concepts(func(c kg.NodeID) bool {
		cname := g.Name(c)
		lower := strings.ToLower(cname)
		switch {
		case lower == needle:
			cands = append(cands, scored{cname, 0})
		case strings.HasPrefix(lower, needle) || strings.HasPrefix(needle, lower):
			cands = append(cands, scored{cname, 1})
		case strings.Contains(lower, needle) || strings.Contains(needle, lower):
			cands = append(cands, scored{cname, 2})
		default:
			if d := boundedEditDistance(lower, needle, maxDist); d <= maxDist {
				cands = append(cands, scored{cname, 2 + d})
			}
		}
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rank != cands[j].rank {
			return cands[i].rank < cands[j].rank
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) == 0 {
		return nil
	}
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// boundedEditDistance computes the Levenshtein distance between a and
// b, giving up (returning bound+1) as soon as the distance provably
// exceeds bound — O(len·bound) instead of O(len²) per candidate.
func boundedEditDistance(a, b string, bound int) int {
	if d := len(a) - len(b); d > bound || -d > bound {
		return bound + 1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if v := prev[j] + 1; v < m { // delete
				m = v
			}
			if v := cur[j-1] + 1; v < m { // insert
				m = v
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
