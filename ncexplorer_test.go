package ncexplorer

import (
	"strings"
	"sync"
	"testing"
)

var (
	facadeOnce sync.Once
	facade     *Explorer
)

func getExplorer(t testing.TB) *Explorer {
	t.Helper()
	facadeOnce.Do(func() {
		x, err := New(Config{Scale: "tiny"})
		if err != nil {
			panic(err)
		}
		facade = x
	})
	return facade
}

func TestNewValidatesScale(t *testing.T) {
	if _, err := New(Config{Scale: "galactic"}); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestRollUpFacade(t *testing.T) {
	x := getExplorer(t)
	articles, err := x.RollUp([]string{"Bitcoin exchange", "Financial crime"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(articles) == 0 {
		t.Fatal("no articles")
	}
	for _, a := range articles {
		if a.Title == "" || a.Source == "" {
			t.Errorf("article underfilled: %+v", a)
		}
		if len(a.Explanations) != 2 {
			t.Errorf("explanations = %d, want 2", len(a.Explanations))
		}
		for _, e := range a.Explanations {
			if e.Concept != "Bitcoin exchange" && e.Concept != "Financial crime" {
				t.Errorf("unexpected explanation concept %q", e.Concept)
			}
			if e.CDR > 0 && e.Pivot == "" {
				t.Error("positive cdr without pivot name")
			}
		}
	}
}

func TestRollUpErrors(t *testing.T) {
	x := getExplorer(t)
	if _, err := x.RollUp(nil, 5); err == nil {
		t.Error("empty query should error")
	}
	if _, err := x.RollUp([]string{"No Such Concept"}, 5); err == nil {
		t.Error("unknown concept should error")
	}
	if _, err := x.RollUp([]string{"FTX"}, 5); err == nil || !strings.Contains(err.Error(), "entity") {
		t.Errorf("entity-as-concept should error helpfully, got %v", err)
	}
}

func TestDrillDownFacade(t *testing.T) {
	x := getExplorer(t)
	subs, err := x.DrillDown([]string{"Elections"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no subtopics")
	}
	for i, s := range subs {
		if s.Concept == "" || s.MatchedDocs <= 0 {
			t.Errorf("subtopic underfilled: %+v", s)
		}
		if i > 0 && subs[i-1].Score < s.Score {
			t.Error("subtopics not sorted")
		}
	}
}

func TestFig1Workflow(t *testing.T) {
	// The paper's Fig. 1 walkthrough: roll up FTX to a concept, query,
	// then drill into a suggested subtopic.
	x := getExplorer(t)
	concepts, err := x.ConceptsForEntity("FTX")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range concepts {
		if c == "Bitcoin exchange" {
			found = true
		}
	}
	if !found {
		t.Fatalf("FTX concepts = %v, want Bitcoin exchange", concepts)
	}
	broader, err := x.BroaderConcepts("Bitcoin exchange")
	if err != nil {
		t.Fatal(err)
	}
	if len(broader) == 0 || broader[0] != "Cryptocurrency" {
		t.Fatalf("broader = %v", broader)
	}
	kws, err := x.TopicKeywords("Bitcoin exchange", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kws) == 0 {
		t.Fatal("no keywords")
	}
	articles, err := x.RollUp([]string{"Bitcoin exchange"}, 5)
	if err != nil || len(articles) == 0 {
		t.Fatalf("roll-up failed: %v", err)
	}
	subs, err := x.DrillDown([]string{"Bitcoin exchange"}, 5)
	if err != nil || len(subs) == 0 {
		t.Fatalf("drill-down failed: %v", err)
	}
	refined, err := x.RollUp([]string{"Bitcoin exchange", subs[0].Concept}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined) > len(articles)+5 {
		t.Error("refined query should not explode the result set")
	}
}

func TestEvaluationTopics(t *testing.T) {
	x := getExplorer(t)
	topics := x.EvaluationTopics()
	if len(topics) != 6 {
		t.Fatalf("topics = %d", len(topics))
	}
	for _, pair := range topics {
		if _, err := x.RollUp([]string{pair[0], pair[1]}, 3); err != nil {
			t.Errorf("topic query %v failed: %v", pair, err)
		}
	}
}

func TestNumArticles(t *testing.T) {
	x := getExplorer(t)
	if x.NumArticles() < 100 {
		t.Errorf("articles = %d", x.NumArticles())
	}
}
