package ncexplorer

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
)

var (
	facadeOnce sync.Once
	facade     *Explorer
)

func getExplorer(t testing.TB) *Explorer {
	t.Helper()
	facadeOnce.Do(func() {
		x, err := New(Config{Scale: "tiny"})
		if err != nil {
			panic(err)
		}
		facade = x
	})
	return facade
}

func TestNewValidatesScale(t *testing.T) {
	if _, err := New(Config{Scale: "galactic"}); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestRollUpFacade(t *testing.T) {
	x := getExplorer(t)
	articles, err := x.RollUp([]string{"Bitcoin exchange", "Financial crime"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(articles) == 0 {
		t.Fatal("no articles")
	}
	for _, a := range articles {
		if a.Title == "" || a.Source == "" {
			t.Errorf("article underfilled: %+v", a)
		}
		if len(a.Explanations) != 2 {
			t.Errorf("explanations = %d, want 2", len(a.Explanations))
		}
		for _, e := range a.Explanations {
			if e.Concept != "Bitcoin exchange" && e.Concept != "Financial crime" {
				t.Errorf("unexpected explanation concept %q", e.Concept)
			}
			if e.CDR > 0 && e.Pivot == "" {
				t.Error("positive cdr without pivot name")
			}
		}
	}
}

func TestRollUpErrors(t *testing.T) {
	x := getExplorer(t)
	if _, err := x.RollUp(nil, 5); err == nil {
		t.Error("empty query should error")
	}
	if _, err := x.RollUp([]string{"No Such Concept"}, 5); err == nil {
		t.Error("unknown concept should error")
	}
	if _, err := x.RollUp([]string{"FTX"}, 5); err == nil || !strings.Contains(err.Error(), "entity") {
		t.Errorf("entity-as-concept should error helpfully, got %v", err)
	}
}

func TestDrillDownFacade(t *testing.T) {
	x := getExplorer(t)
	subs, err := x.DrillDown([]string{"Elections"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no subtopics")
	}
	for i, s := range subs {
		if s.Concept == "" || s.MatchedDocs <= 0 {
			t.Errorf("subtopic underfilled: %+v", s)
		}
		if i > 0 && subs[i-1].Score < s.Score {
			t.Error("subtopics not sorted")
		}
	}
}

func TestFig1Workflow(t *testing.T) {
	// The paper's Fig. 1 walkthrough: roll up FTX to a concept, query,
	// then drill into a suggested subtopic.
	x := getExplorer(t)
	concepts, err := x.ConceptsForEntity("FTX")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range concepts {
		if c == "Bitcoin exchange" {
			found = true
		}
	}
	if !found {
		t.Fatalf("FTX concepts = %v, want Bitcoin exchange", concepts)
	}
	broader, err := x.BroaderConcepts("Bitcoin exchange")
	if err != nil {
		t.Fatal(err)
	}
	if len(broader) == 0 || broader[0] != "Cryptocurrency" {
		t.Fatalf("broader = %v", broader)
	}
	kws, err := x.TopicKeywords("Bitcoin exchange", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kws) == 0 {
		t.Fatal("no keywords")
	}
	articles, err := x.RollUp([]string{"Bitcoin exchange"}, 5)
	if err != nil || len(articles) == 0 {
		t.Fatalf("roll-up failed: %v", err)
	}
	subs, err := x.DrillDown([]string{"Bitcoin exchange"}, 5)
	if err != nil || len(subs) == 0 {
		t.Fatalf("drill-down failed: %v", err)
	}
	refined, err := x.RollUp([]string{"Bitcoin exchange", subs[0].Concept}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined) > len(articles)+5 {
		t.Error("refined query should not explode the result set")
	}
}

func TestEvaluationTopics(t *testing.T) {
	x := getExplorer(t)
	topics := x.EvaluationTopics()
	if len(topics) != 6 {
		t.Fatalf("topics = %d", len(topics))
	}
	for _, pair := range topics {
		if _, err := x.RollUp([]string{pair[0], pair[1]}, 3); err != nil {
			t.Errorf("topic query %v failed: %v", pair, err)
		}
	}
}

func TestNumArticles(t *testing.T) {
	x := getExplorer(t)
	if x.NumArticles() < 100 {
		t.Errorf("articles = %d", x.NumArticles())
	}
}

func TestCanonicalConcepts(t *testing.T) {
	got := CanonicalConcepts([]string{" b ", "a", "b", "", "  ", "a"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v; want [a b]", got)
	}
	if got := CanonicalConcepts(nil); len(got) != 0 {
		t.Fatalf("nil query canonicalized to %v", got)
	}
	// The input slice must not be mutated.
	in := []string{"z", "y"}
	CanonicalConcepts(in)
	if in[0] != "z" || in[1] != "y" {
		t.Fatalf("input mutated: %v", in)
	}
	// Already-canonical input round-trips unchanged (fast path).
	done := []string{"a", "b"}
	if got := CanonicalConcepts(done); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("canonical input changed: %v", got)
	}
}

func TestQueryKey(t *testing.T) {
	a := QueryKey("rollup", []string{"Swiss bank", "Money laundering"}, 10)
	b := QueryKey("rollup", []string{"Money laundering", "Swiss bank", "Swiss bank"}, 10)
	if a != b {
		t.Fatalf("permuted/duplicated queries got different keys:\n%q\n%q", a, b)
	}
	if QueryKey("rollup", []string{"Swiss bank"}, 10) == QueryKey("rollup", []string{"Swiss bank"}, 5) {
		t.Fatal("k must be part of the key")
	}
	if QueryKey("rollup", []string{"Swiss bank"}, 10) == QueryKey("drilldown", []string{"Swiss bank"}, 10) {
		t.Fatal("operation must be part of the key")
	}
	// Length prefixing: a single name embedding arbitrary separator
	// bytes must not collide with a multi-concept query.
	joined := QueryKey("rollup", []string{"a|1:b"}, 10)
	split := QueryKey("rollup", []string{"a", "b"}, 10)
	if joined == split {
		t.Fatal("user-controlled name bytes must not collide with a distinct query")
	}
}

func TestStatsFacade(t *testing.T) {
	x := getExplorer(t)
	s := x.Stats()
	if s.Articles != x.NumArticles() {
		t.Errorf("stats articles = %d, NumArticles = %d", s.Articles, x.NumArticles())
	}
	if s.Concepts == 0 || s.Instances == 0 || s.Nodes != s.Concepts+s.Instances {
		t.Errorf("graph dimensions inconsistent: %+v", s)
	}
	if s.InstanceEdges == 0 || s.TypeAssertions == 0 {
		t.Errorf("edge counts missing: %+v", s)
	}
	if s2 := x.Stats(); !reflect.DeepEqual(s2, s) {
		t.Error("Stats should be a stable snapshot while the corpus is unchanged")
	}
	if s.Generation != 1 {
		t.Errorf("fresh explorer generation = %d, want 1", s.Generation)
	}
	if len(s.Segments) != 1 || s.Segments[0] != s.Articles {
		t.Errorf("fresh explorer segments = %v, want one segment of %d docs", s.Segments, s.Articles)
	}
}

func TestIngestFacade(t *testing.T) {
	x, err := New(Config{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	before := x.NumArticles()
	topics := x.EvaluationTopics()
	baseTotals := make([]int, len(topics))
	for i, tp := range topics {
		res, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: []string{tp[0]}, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		baseTotals[i] = res.Total
	}

	// Validation: the batch is rejected atomically on any bad article.
	if _, err := x.Ingest(context.Background(), nil); err == nil {
		t.Fatal("empty batch should be rejected")
	}
	bad := []IngestArticle{
		{Source: "reuters", Title: "ok", Body: "fine"},
		{Source: "bloomberg", Title: "nope", Body: "unknown source"},
	}
	_, err = x.Ingest(context.Background(), bad)
	e, ok := AsError(err)
	if !ok || e.Code != CodeInvalidArgument {
		t.Fatalf("bad source error = %v, want CodeInvalidArgument", err)
	}
	if x.NumArticles() != before || x.Generation() != 1 {
		t.Fatal("rejected batch must not change the corpus")
	}

	arts, err := x.SampleArticles(31337, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Ingest(context.Background(), arts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 12 || res.Generation != 2 || res.TotalArticles != before+12 {
		t.Fatalf("ingest result = %+v", res)
	}
	if x.NumArticles() != before+12 || x.Generation() != 2 {
		t.Fatalf("explorer not updated: %d articles, generation %d", x.NumArticles(), x.Generation())
	}
	st := x.Stats()
	if st.Generation != 2 || len(st.Segments) != 2 || st.Segments[1] != 12 {
		t.Fatalf("stats after ingest: generation=%d segments=%v", st.Generation, st.Segments)
	}
	if st.Ingest.Batches != 1 || st.Ingest.Docs != 12 {
		t.Fatalf("ingest counters = %+v", st.Ingest)
	}

	// Ingested articles are retrievable: match totals never shrink
	// (append-only corpus) and at least one evaluation topic must pick
	// up new coverage from a 12-article sample.
	grew := false
	for i, tp := range topics {
		res, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: []string{tp[0]}, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Generation != 2 {
			t.Fatalf("query served at generation %d, want 2", res.Generation)
		}
		if res.Total < baseTotals[i] {
			t.Fatalf("topic %q total shrank after ingest: %d → %d", tp[0], baseTotals[i], res.Total)
		}
		if res.Total > baseTotals[i] {
			grew = true
		}
	}
	if !grew {
		t.Error("no evaluation topic gained coverage from the ingested batch")
	}
}
