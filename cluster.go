package ncexplorer

// Multi-node serving surface: what the cluster layers (the HTTP
// server's internal replication endpoints, the replica catch-up loop,
// and the scatter-gather query router) build on. An Explorer can be
// constructed as one shard of a federated corpus (Config.ShardCount),
// and a QueryWorld is the corpus-less counterpart a router holds: the
// deterministic knowledge graph regenerated from (scale, seed), enough
// to resolve and render concept queries whose execution happens on the
// shards. See DESIGN.md §10 for the topology and the exactness
// argument.

import (
	"context"
	"errors"

	"ncexplorer/internal/core"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
)

// WrapContextErr converts a raw context error from an engine-level
// call into the facade's typed error (CodeCancelled or
// CodeDeadlineExceeded), exactly as the facade's own query methods do;
// other errors pass through unchanged. The serving layers use it when
// they call engine scatter primitives directly.
func WrapContextErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ctxError(err)
	}
	return err
}

// Engine exposes the underlying core engine to the internal serving
// layers (HTTP server, cluster router and replica). It is not a
// stability-guaranteed public API: the facade methods are.
func (x *Explorer) Engine() *core.Engine { return x.engine }

// Graph exposes the knowledge graph (immutable after construction).
func (x *Explorer) Graph() *kg.Graph { return x.g }

// Scale names the synthetic-world scale this Explorer was built at.
func (x *Explorer) Scale() string { return x.scale }

// Seed returns the world seed; together with Scale it identifies the
// deterministic world, which is how cluster nodes verify they share
// one graph (equal (scale, seed) ⇒ byte-identical graphs and node
// IDs).
func (x *Explorer) Seed() uint64 { return x.engine.Options().Seed }

// ShardInfo reports the Explorer's cluster position: shard index,
// shard count, and whether it is sharded at all.
func (x *Explorer) ShardInfo() (index, count int, sharded bool) {
	return x.engine.ShardInfo()
}

// ResolveConcepts maps concept names to node IDs with the facade's
// typed errors — the internal scatter endpoints use it to turn a
// router's canonical concept list into a core query.
func (x *Explorer) ResolveConcepts(names []string) (core.Query, error) {
	return resolveConceptsOn(x.g, names)
}

// ValidatePage applies the facade's shared page-shape validation — the
// router validates at its own edge with the exact typed errors (and so
// the exact error bodies) a monolithic server would produce.
func ValidatePage(k, offset int, minScore float64) error {
	return validatePage(k, offset, minScore)
}

// ValidateSources rejects unknown source-filter names with the same
// typed error RollUpQuery produces.
func ValidateSources(names []string) error {
	_, err := resolveSources(names)
	return err
}

// NextPageOffset computes the pagination cursor exactly as the facade
// does: the offset of the page after one that returned `returned` of
// `total` results, or -1 when exhausted.
func NextPageOffset(offset, returned, total int) int {
	return nextOffset(offset, returned, total)
}

// QueryWorld is the router's world model: the knowledge graph (and
// evaluation metadata) regenerated deterministically from (scale,
// seed), with the same name resolution and error surface the Explorer
// uses — but no corpus and no engine. A router resolves concept names
// against it, ships node IDs to the shards, and renders shard answers
// back to names.
type QueryWorld struct {
	g     *kg.Graph
	meta  *kggen.Meta
	scale string
	seed  uint64
}

// NewQueryWorld regenerates the world for (scale, seed). Seed 0 means
// the default seed, exactly as in Config.
func NewQueryWorld(scale string, seed uint64) (*QueryWorld, error) {
	if seed == 0 {
		seed = 42
	}
	scale, kcfg, _, err := worldConfigs(scale, seed)
	if err != nil {
		return nil, err
	}
	g, meta, err := kggen.Generate(kcfg)
	if err != nil {
		return nil, err
	}
	return &QueryWorld{g: g, meta: meta, scale: scale, seed: seed}, nil
}

// Graph returns the regenerated knowledge graph.
func (w *QueryWorld) Graph() *kg.Graph { return w.g }

// Scale returns the normalized world scale.
func (w *QueryWorld) Scale() string { return w.scale }

// Seed returns the world seed.
func (w *QueryWorld) Seed() uint64 { return w.seed }

// ResolveConcepts maps concept names to node IDs with the facade's
// typed errors (CodeUnknownConcept with suggestions, CodeInvalidArgument
// for entities). Call with CanonicalConcepts output for set semantics.
func (w *QueryWorld) ResolveConcepts(names []string) (core.Query, error) {
	return resolveConceptsOn(w.g, names)
}

// ConceptName renders a node ID back to its concept name.
func (w *QueryWorld) ConceptName(c kg.NodeID) string { return w.g.Name(c) }

// EvaluationTopics returns the Table-I topic names, like
// Explorer.EvaluationTopics.
func (w *QueryWorld) EvaluationTopics() [][2]string {
	var out [][2]string
	for _, t := range w.meta.Topics {
		out = append(out, [2]string{w.g.Name(t.Concept), w.g.Name(t.GroupConcept)})
	}
	return out
}
