module ncexplorer

go 1.22
