package ncexplorer_test

import (
	"fmt"
	"log"

	"ncexplorer"
)

// The canonical due-diligence loop: generalise a known entity, query
// the generalisation alongside a risk topic, then drill into the
// suggested subtopics.
func Example() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}

	// Roll up "FTX" to its concepts ("Bitcoin exchange", …).
	concepts, err := x.ConceptsForEntity("FTX")
	if err != nil {
		log.Fatal(err)
	}

	// Screen the whole industry against financial crime.
	articles, err := x.RollUp([]string{concepts[0], "Financial crime"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range articles {
		fmt.Println(a.Title)
		for _, e := range a.Explanations {
			fmt.Printf("  %s matched via %s\n", e.Concept, e.Pivot)
		}
	}

	// Discover what to investigate next.
	subs, err := x.DrillDown([]string{concepts[0], "Financial crime"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range subs {
		fmt.Printf("subtopic: %s (%d documents)\n", s.Concept, s.MatchedDocs)
	}
}

// Concept-pattern queries combine any number of concepts; every result
// matches all of them.
func ExampleExplorer_RollUp() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}
	articles, err := x.RollUp([]string{"Elections", "African country"}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range articles {
		fmt.Printf("[%.3f] %s\n", a.Score, a.Title)
	}
}

// Drill-down suggestions carry their score decomposition, so a UI can
// explain why a subtopic is offered.
func ExampleExplorer_DrillDown() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}
	subs, err := x.DrillDown([]string{"International trade"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range subs {
		fmt.Printf("%s: coverage %.2f × specificity %.2f × diversity %.2f\n",
			s.Concept, s.Coverage, s.Specificity, s.Diversity)
	}
}
