// Package ncexplorer is the public facade of the NCExplorer
// reproduction: OLAP-style news exploration over a knowledge graph, as
// described in "Enabling Roll-Up and Drill-Down Operations in News
// Exploration with Knowledge Graphs for Due Diligence and Risk
// Management" (ICDE 2024).
//
// An Explorer owns a knowledge graph, a news corpus, and an indexed
// engine. Users phrase *concept pattern queries* — sets of KG concepts
// such as {"Money laundering", "Swiss bank"} — and navigate with two
// operations:
//
//   - RollUp retrieves the most relevant articles matching every
//     concept in the query, each with a per-concept explanation (which
//     entity matched, how strongly);
//   - DrillDown suggests ranked subtopics that refine the current
//     query, scored by coverage × specificity × diversity.
//
// The zero-dependency build ships a synthetic world generator standing
// in for DBpedia and the paper's crawled news corpus; see DESIGN.md for
// the substitution rationale. All randomness is seeded: equal
// configurations produce byte-identical results.
//
// Quick start:
//
//	x, err := ncexplorer.New(ncexplorer.Config{})
//	articles, err := x.RollUp([]string{"Bitcoin exchange", "Financial crime"}, 5)
//	subtopics, err := x.DrillDown([]string{"Bitcoin exchange"}, 10)
package ncexplorer

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
)

// Config controls the synthetic world and the engine. The zero value
// is a sensible laptop-scale default.
type Config struct {
	// Seed drives every stochastic component (default 42).
	Seed uint64
	// Scale selects the world size: "tiny" (unit-test sized) or
	// "default" (experiment sized). Default "default".
	Scale string
	// Samples is the number of random walks per connectivity estimate
	// (paper default 50).
	Samples int
	// Tau is the hop constraint τ (paper default 2).
	Tau int
	// Beta is the path damping factor β (paper default 0.5).
	Beta float64
}

// Article is one roll-up result.
type Article struct {
	ID           int           `json:"id"`
	Source       string        `json:"source"`
	Title        string        `json:"title"`
	Body         string        `json:"body"`
	Score        float64       `json:"score"`
	Explanations []Explanation `json:"explanations"`
}

// Explanation attributes part of an article's relevance to one query
// concept: the concept-document relevance (cdr) and the pivot entity
// whose mention carried the match.
type Explanation struct {
	Concept string  `json:"concept"`
	CDR     float64 `json:"cdr"`
	Pivot   string  `json:"pivot,omitempty"`
}

// SubtopicSuggestion is one drill-down suggestion.
type SubtopicSuggestion struct {
	Concept     string  `json:"concept"`
	Score       float64 `json:"score"`
	Coverage    float64 `json:"coverage"`
	Specificity float64 `json:"specificity"`
	Diversity   float64 `json:"diversity"`
	MatchedDocs int     `json:"matched_docs"`
}

// CacheCounters is one engine memo cache's effectiveness snapshot.
// Misses count computations actually performed; Coalesced counts
// callers that piggybacked on another goroutine's in-flight
// computation for the same key (the engine's per-shard singleflight).
type CacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Entries   int64 `json:"entries"`
}

// EngineCacheStats reports the engine's two query-path memo caches:
// CDR is the (concept, document) relevance memo (pre-seeded at
// indexing time, so Entries starts large), Match the
// concept→matching-documents memo.
type EngineCacheStats struct {
	CDR   CacheCounters `json:"cdr"`
	Match CacheCounters `json:"match"`
}

// Stats summarises an Explorer's indexed world: corpus size, graph
// dimensions, and the indexing cost split the engine measured. It is
// the payload behind a server's /statsz endpoint.
type Stats struct {
	Articles       int   `json:"articles"`
	Nodes          int   `json:"nodes"`
	Instances      int   `json:"instances"`
	Concepts       int   `json:"concepts"`
	InstanceEdges  int64 `json:"instance_edges"`
	BroaderEdges   int64 `json:"broader_edges"`
	TypeAssertions int64 `json:"type_assertions"`
	// Wall-clock nanoseconds spent entity-linking and concept-scoring
	// the corpus at build time (single-threaded equivalents).
	LinkNanos  int64 `json:"link_nanos"`
	ScoreNanos int64 `json:"score_nanos"`
	// EngineCache is a live snapshot of the engine's query-path memo
	// caches, refreshed on every Stats call.
	EngineCache EngineCacheStats `json:"engine_cache"`
}

// Explorer is a fully indexed NCExplorer instance. Safe for concurrent
// queries.
type Explorer struct {
	g      *kg.Graph
	meta   *kggen.Meta
	corpus *corpus.Corpus
	engine *core.Engine

	statsOnce sync.Once
	stats     Stats
}

// New builds a synthetic world and indexes it. Expect a few seconds at
// the default scale.
func New(cfg Config) (*Explorer, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	var kcfg kggen.Config
	var ccfg corpus.Config
	switch cfg.Scale {
	case "", "default":
		kcfg, ccfg = kggen.Default(), corpus.Default()
	case "tiny":
		kcfg, ccfg = kggen.Tiny(), corpus.Tiny()
	default:
		return nil, fmt.Errorf("ncexplorer: unknown scale %q (want \"tiny\" or \"default\")", cfg.Scale)
	}
	kcfg.Seed = cfg.Seed
	ccfg.Seed = (cfg.Seed ^ 0xC0) + 7

	g, meta, err := kggen.Generate(kcfg)
	if err != nil {
		return nil, err
	}
	c, err := corpus.Generate(g, meta, ccfg)
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(g, core.Options{
		Seed:    cfg.Seed,
		Samples: cfg.Samples,
		Tau:     cfg.Tau,
		Beta:    cfg.Beta,
	})
	engine.IndexCorpus(c)
	return &Explorer{g: g, meta: meta, corpus: c, engine: engine}, nil
}

// NumArticles returns the corpus size.
func (x *Explorer) NumArticles() int { return x.corpus.Len() }

// Stats reports corpus and graph dimensions plus indexing cost. The
// world is immutable after New, so that part of the snapshot is
// computed once and reused; the engine-cache counters are live and
// refreshed on every call.
func (x *Explorer) Stats() Stats {
	x.statsOnce.Do(func() {
		gs := x.g.Stats()
		is := x.engine.Stats()
		x.stats = Stats{
			Articles:       x.corpus.Len(),
			Nodes:          gs.Nodes,
			Instances:      gs.Instances,
			Concepts:       gs.Concepts,
			InstanceEdges:  gs.InstanceEdges,
			BroaderEdges:   gs.BroaderEdges,
			TypeAssertions: gs.TypeAssertions,
			LinkNanos:      is.LinkNanos,
			ScoreNanos:     is.ScoreNanos,
		}
	})
	st := x.stats
	cs := x.engine.CacheStats()
	st.EngineCache = EngineCacheStats{
		CDR:   CacheCounters(cs.CDR),
		Match: CacheCounters(cs.Match),
	}
	return st
}

// ResetQueryCaches restores the engine's query-time memoisation to its
// post-indexing state. Benchmarks and stress tests use it to replay
// cold-cache traffic; results are unaffected because on-demand values
// are seeded per (concept, document). Do not call it while queries are
// in flight (see core.Engine.ResetQueryCaches).
func (x *Explorer) ResetQueryCaches() { x.engine.ResetQueryCaches() }

// CanonicalConcepts returns a canonical form of a concept query:
// names are whitespace-trimmed, empties dropped, duplicates removed,
// and the rest sorted. Two queries naming the same concept set
// canonicalize identically, which is what makes cache keys (QueryKey)
// and cached responses order-insensitive. Already-canonical input is
// returned as-is (the result may alias the input; the input is never
// mutated).
func CanonicalConcepts(concepts []string) []string {
	canonical := true
	for i, c := range concepts {
		if c == "" || c != strings.TrimSpace(c) || (i > 0 && concepts[i-1] >= c) {
			canonical = false
			break
		}
	}
	if canonical {
		return concepts
	}
	out := make([]string, 0, len(concepts))
	seen := make(map[string]bool, len(concepts))
	for _, c := range concepts {
		c = strings.TrimSpace(c)
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// QueryKey builds a canonical cache key for an operation over a
// concept query at result size k. The concept set is canonicalized
// first, so permutations and duplicates of the same query map to the
// same key. Each concept is length-prefixed in the key, so distinct
// queries cannot collide no matter what bytes the names contain.
func QueryKey(op string, concepts []string, k int) string {
	var b strings.Builder
	b.WriteString(op)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	for _, c := range CanonicalConcepts(concepts) {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(c)))
		b.WriteByte(':')
		b.WriteString(c)
	}
	return b.String()
}

// resolveConcepts maps concept names to node IDs.
func (x *Explorer) resolveConcepts(names []string) (core.Query, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("ncexplorer: empty concept query")
	}
	q := make(core.Query, 0, len(names))
	for _, name := range names {
		id, ok := x.g.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("ncexplorer: unknown concept %q", name)
		}
		if !x.g.IsConcept(id) {
			return nil, fmt.Errorf("ncexplorer: %q is an entity, not a concept (try ConceptsForEntity)", name)
		}
		q = append(q, id)
	}
	return q, nil
}

// RollUp retrieves the top-k articles matching every named concept
// (Definition 1 of the paper).
func (x *Explorer) RollUp(concepts []string, k int) ([]Article, error) {
	q, err := x.resolveConcepts(concepts)
	if err != nil {
		return nil, err
	}
	results := x.engine.RollUp(q, k)
	out := make([]Article, 0, len(results))
	for _, r := range results {
		d := x.corpus.Doc(r.Doc)
		art := Article{
			ID:     int(r.Doc),
			Source: d.Source.String(),
			Title:  d.Title,
			Body:   d.Body,
			Score:  r.Score,
		}
		for _, cc := range r.Contributors {
			expl := Explanation{Concept: x.g.Name(cc.Concept), CDR: cc.CDR}
			if cc.Pivot >= 0 {
				expl.Pivot = x.g.Name(cc.Pivot)
			}
			art.Explanations = append(art.Explanations, expl)
		}
		out = append(out, art)
	}
	return out, nil
}

// DrillDown suggests the top-k subtopics refining the named concepts
// (Definition 2 of the paper).
func (x *Explorer) DrillDown(concepts []string, k int) ([]SubtopicSuggestion, error) {
	q, err := x.resolveConcepts(concepts)
	if err != nil {
		return nil, err
	}
	subs := x.engine.DrillDown(q, k)
	out := make([]SubtopicSuggestion, 0, len(subs))
	for _, s := range subs {
		out = append(out, SubtopicSuggestion{
			Concept:     x.g.Name(s.Concept),
			Score:       s.Score,
			Coverage:    s.Coverage,
			Specificity: s.Specificity,
			Diversity:   s.Diversity,
			MatchedDocs: s.MatchedDocs,
		})
	}
	return out, nil
}

// ConceptsForEntity lists the concepts an entity can be rolled up to,
// most specific first — the first step of the paper's Fig. 1 workflow
// ("FTX" → "Bitcoin exchange").
func (x *Explorer) ConceptsForEntity(entity string) ([]string, error) {
	id, ok := x.g.Lookup(entity)
	if !ok {
		return nil, fmt.Errorf("ncexplorer: unknown entity %q", entity)
	}
	if !x.g.IsInstance(id) {
		return nil, fmt.Errorf("ncexplorer: %q is a concept, not an entity", entity)
	}
	var out []string
	for _, c := range x.engine.ConceptsForEntity(id) {
		out = append(out, x.g.Name(c))
	}
	return out, nil
}

// BroaderConcepts lists the next roll-up level above a concept.
func (x *Explorer) BroaderConcepts(concept string) ([]string, error) {
	id, ok := x.g.Lookup(concept)
	if !ok || !x.g.IsConcept(id) {
		return nil, fmt.Errorf("ncexplorer: unknown concept %q", concept)
	}
	var out []string
	for _, c := range x.engine.BroaderOptions(id) {
		out = append(out, x.g.Name(c))
	}
	return out, nil
}

// TopicKeywords amplifies a concept into a retrieval keyword list (the
// most connected entities of its extent).
func (x *Explorer) TopicKeywords(concept string, n int) ([]string, error) {
	id, ok := x.g.Lookup(concept)
	if !ok || !x.g.IsConcept(id) {
		return nil, fmt.Errorf("ncexplorer: unknown concept %q", concept)
	}
	return x.engine.TopicKeywords(id, n), nil
}

// EvaluationTopics returns the six Table-I topic names with their
// query concepts, for callers reproducing the paper's evaluation.
func (x *Explorer) EvaluationTopics() [][2]string {
	var out [][2]string
	for _, t := range x.meta.Topics {
		out = append(out, [2]string{x.g.Name(t.Concept), x.g.Name(t.GroupConcept)})
	}
	return out
}
