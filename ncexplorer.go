// Package ncexplorer is the public facade of the NCExplorer
// reproduction: OLAP-style news exploration over a knowledge graph, as
// described in "Enabling Roll-Up and Drill-Down Operations in News
// Exploration with Knowledge Graphs for Due Diligence and Risk
// Management" (ICDE 2024).
//
// An Explorer owns a knowledge graph, a news corpus, and an indexed
// engine. Users phrase *concept pattern queries* — sets of KG concepts
// such as {"Money laundering", "Swiss bank"} — and navigate with two
// operations:
//
//   - RollUp retrieves the most relevant articles matching every
//     concept in the query, each with a per-concept explanation (which
//     entity matched, how strongly);
//   - DrillDown suggests ranked subtopics that refine the current
//     query, scored by coverage × specificity × diversity.
//
// The zero-dependency build ships a synthetic world generator standing
// in for DBpedia and the paper's crawled news corpus; see DESIGN.md for
// the substitution rationale. All randomness is seeded: equal
// configurations produce byte-identical results.
//
// Quick start:
//
//	x, err := ncexplorer.New(ncexplorer.Config{})
//	articles, err := x.RollUp([]string{"Bitcoin exchange", "Financial crime"}, 5)
//	subtopics, err := x.DrillDown([]string{"Bitcoin exchange"}, 10)
package ncexplorer

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/watch"
)

// Config controls the synthetic world and the engine. The zero value
// is a sensible laptop-scale default.
type Config struct {
	// Seed drives every stochastic component (default 42).
	Seed uint64
	// Scale selects the world size: "tiny" (unit-test sized) or
	// "default" (experiment sized). Default "default".
	Scale string
	// Samples is the number of random walks per connectivity estimate
	// (paper default 50).
	Samples int
	// Tau is the hop constraint τ (paper default 2).
	Tau int
	// Beta is the path damping factor β (paper default 0.5).
	Beta float64
	// MaxSegments is the index segment count above which ingested
	// segments are merged in the background (default 4).
	MaxSegments int
	// MaxWatchlists caps concurrently registered watchlists (default 64).
	MaxWatchlists int
	// AlertBuffer is the per-watchlist alert retention window — the ring
	// capacity backing SSE catch-up and webhook redelivery (default 256).
	AlertBuffer int
	// ShardCount > 1 builds this Explorer as one shard of a federated
	// corpus: it indexes only the Shard-th doc-disjoint slice of the
	// seed corpus (keeping global document IDs) and expects peer
	// statistics via the engine's SetRemoteStats exchange before its
	// scores are corpus-global. Zero or one means monolithic.
	ShardCount int
	// Shard is this node's shard index in [0, ShardCount).
	Shard int
}

// Article is one roll-up result. Explanations are present when the
// query asked for them (RollUp always does; RollUpQuery honours its
// Explain toggle).
type Article struct {
	ID     int     `json:"id"`
	Source string  `json:"source"`
	Title  string  `json:"title"`
	Body   string  `json:"body"`
	Score  float64 `json:"score"`
	// PublishedAt is the article's publication time, RFC3339 UTC.
	// Always present: articles ingested without one were stamped with
	// the ingest wall clock.
	PublishedAt  string        `json:"published_at"`
	Explanations []Explanation `json:"explanations,omitempty"`
}

// Explanation attributes part of an article's relevance to one query
// concept: the concept-document relevance (cdr) and the pivot entity
// whose mention carried the match.
type Explanation struct {
	Concept string  `json:"concept"`
	CDR     float64 `json:"cdr"`
	Pivot   string  `json:"pivot,omitempty"`
}

// SubtopicSuggestion is one drill-down suggestion.
type SubtopicSuggestion struct {
	Concept     string  `json:"concept"`
	Score       float64 `json:"score"`
	Coverage    float64 `json:"coverage"`
	Specificity float64 `json:"specificity"`
	Diversity   float64 `json:"diversity"`
	MatchedDocs int     `json:"matched_docs"`
}

// CacheCounters is one engine memo cache's effectiveness snapshot.
// Misses count computations actually performed; Coalesced counts
// callers that piggybacked on another goroutine's in-flight
// computation for the same key (the engine's per-shard singleflight).
type CacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Entries   int64 `json:"entries"`
}

// EngineCacheStats reports the engine's query-path memo caches: CDR
// is the (concept, document) relevance memo (pre-seeded when a
// snapshot is built, so Entries starts large), Match the
// concept→matching-documents memo — both scoped to the current index
// generation — and Conn the generation-independent connectivity memo
// that makes post-ingest snapshot rebuilds cheap.
type EngineCacheStats struct {
	CDR   CacheCounters `json:"cdr"`
	Match CacheCounters `json:"match"`
	Conn  CacheCounters `json:"conn"`
}

// IngestCounters reports live-ingestion throughput: successful
// batches, documents added, their summed wall-clock cost, and
// background segment merges.
type IngestCounters struct {
	Batches int64 `json:"batches"`
	Docs    int64 `json:"docs"`
	Nanos   int64 `json:"nanos"`
	Merges  int64 `json:"merges"`
	// DocsDefaultedTime counts ingested documents that carried no
	// publication time and were stamped with the ingest wall clock.
	DocsDefaultedTime int64 `json:"docs_defaulted_time"`
}

// PersistCounters reports durable-snapshot activity (see Stats.Persist).
type PersistCounters struct {
	Saves            int64 `json:"saves"`
	Opens            int64 `json:"opens"`
	Checkpoints      int64 `json:"checkpoints"`
	SegmentsWritten  int64 `json:"segments_written"`
	SegmentsReused   int64 `json:"segments_reused"`
	BytesWritten     int64 `json:"bytes_written"`
	BytesRead        int64 `json:"bytes_read"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
}

// Stats summarises an Explorer's indexed world: corpus size, graph
// dimensions, and the indexing cost split the engine measured. It is
// the payload behind a server's /statsz endpoint.
type Stats struct {
	Articles       int   `json:"articles"`
	Nodes          int   `json:"nodes"`
	Instances      int   `json:"instances"`
	Concepts       int   `json:"concepts"`
	InstanceEdges  int64 `json:"instance_edges"`
	BroaderEdges   int64 `json:"broader_edges"`
	TypeAssertions int64 `json:"type_assertions"`
	// Wall-clock nanoseconds spent entity-linking and concept-scoring
	// the seed corpus at build time (single-threaded equivalents).
	LinkNanos  int64 `json:"link_nanos"`
	ScoreNanos int64 `json:"score_nanos"`
	// Generation is the index snapshot generation currently serving:
	// 1 after New, +1 per ingested batch.
	Generation uint64 `json:"generation"`
	// Segments lists per-segment document counts of the current
	// snapshot, in base order.
	Segments []int `json:"segments"`
	// Ingest reports live-ingestion throughput counters.
	Ingest IngestCounters `json:"ingest"`
	// Persist reports durable-snapshot activity: saves, warm opens,
	// per-ingest checkpoints, segment files written vs reused, bytes
	// moved, and checkpoint failures (which never fail the triggering
	// ingest — they mean the data directory lags until the next
	// checkpoint succeeds).
	Persist PersistCounters `json:"persist"`
	// EngineCache is a live snapshot of the engine's query-path memo
	// caches, refreshed on every Stats call.
	EngineCache EngineCacheStats `json:"engine_cache"`
	// Watch reports standing-query activity: live watchlists, alerts
	// fired/delivered/dropped, webhook retries and failures, and live
	// SSE subscribers. Refreshed on every Stats call.
	Watch WatchCounters `json:"watch"`
}

// Explorer is a fully indexed NCExplorer instance. Safe for concurrent
// queries, including queries concurrent with Ingest.
type Explorer struct {
	g      *kg.Graph
	meta   *kggen.Meta
	engine *core.Engine
	ccfg   corpus.Config
	// scale names the synthetic-world scale the Explorer was built at;
	// persisted in snapshot manifests so Open can rebuild the graph.
	scale string
	// watch is the standing-query registry; initWatch wires it to the
	// engine's ingest hook and the persistence layer.
	watch *watch.Registry
	// watchWindows holds, per windowed watchlist, the publication times
	// of matches seen so far — the state behind "≥N matches in 7 days"
	// thresholds. Touched only by the ingest hook (which runs under the
	// ingest lock, so no extra locking) and deliberately not persisted:
	// after a restart a window threshold re-arms from empty, which is
	// the documented at-most-once semantics of window arming.
	watchWindows map[string][]int64

	statsOnce sync.Once
	stats     Stats
}

// worldConfigs maps a scale name to the generator configurations New
// and Open share, with the seed derivations applied. The scale string
// is returned normalized ("" → "default").
func worldConfigs(scale string, seed uint64) (string, kggen.Config, corpus.Config, error) {
	var kcfg kggen.Config
	var ccfg corpus.Config
	switch scale {
	case "", "default":
		scale = "default"
		kcfg, ccfg = kggen.Default(), corpus.Default()
	case "tiny":
		kcfg, ccfg = kggen.Tiny(), corpus.Tiny()
	default:
		return "", kcfg, ccfg, fmt.Errorf("ncexplorer: unknown scale %q (want \"tiny\" or \"default\")", scale)
	}
	kcfg.Seed = seed
	ccfg.Seed = (seed ^ 0xC0) + 7
	return scale, kcfg, ccfg, nil
}

// New builds a synthetic world and indexes it. Expect a few seconds at
// the default scale.
func New(cfg Config) (*Explorer, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	scale, kcfg, ccfg, err := worldConfigs(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}

	g, meta, err := kggen.Generate(kcfg)
	if err != nil {
		return nil, err
	}
	c, err := corpus.Generate(g, meta, ccfg)
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(g, core.Options{
		Seed:        cfg.Seed,
		Samples:     cfg.Samples,
		Tau:         cfg.Tau,
		Beta:        cfg.Beta,
		MaxSegments: cfg.MaxSegments,
	})
	if cfg.ShardCount > 1 {
		if cfg.Shard < 0 || cfg.Shard >= cfg.ShardCount {
			return nil, newErrorf(CodeInvalidArgument,
				"ncexplorer: shard index %d out of range [0, %d)", cfg.Shard, cfg.ShardCount)
		}
		engine.IndexCorpusSharded(c, cfg.Shard, cfg.ShardCount)
	} else {
		engine.IndexCorpus(c)
	}
	x := &Explorer{g: g, meta: meta, engine: engine, ccfg: ccfg, scale: scale}
	x.initWatch(watch.Options{MaxWatchlists: cfg.MaxWatchlists, AlertBuffer: cfg.AlertBuffer})
	return x, nil
}

// NumArticles returns the current corpus size (seed world plus every
// ingested article).
func (x *Explorer) NumArticles() int { return x.engine.NumDocs() }

// Generation returns the index snapshot generation currently serving:
// 1 after New, +1 per ingested batch. Segment merges do not change it
// (they reorganise storage, not content).
func (x *Explorer) Generation() uint64 { return x.engine.Generation() }

// QueryEpoch tags the externally observable query-result state: it
// advances whenever previously returned results may differ from what
// the same query returns now — on every ingested batch and every
// ResetQueryCaches call. Response caches layered above the facade
// (e.g. the HTTP server's result cache) fold it into their keys so a
// swap strands stale entries instead of requiring a flush.
func (x *Explorer) QueryEpoch() uint64 { return x.engine.CacheEpoch() }

// Stats reports corpus and graph dimensions plus indexing cost. The
// graph is immutable after New, so that part of the snapshot is
// computed once and reused; the corpus size, generation, segment,
// ingest, and engine-cache numbers are live and refreshed per call.
func (x *Explorer) Stats() Stats {
	x.statsOnce.Do(func() {
		gs := x.g.Stats()
		is := x.engine.Stats()
		x.stats = Stats{
			Nodes:          gs.Nodes,
			Instances:      gs.Instances,
			Concepts:       gs.Concepts,
			InstanceEdges:  gs.InstanceEdges,
			BroaderEdges:   gs.BroaderEdges,
			TypeAssertions: gs.TypeAssertions,
			LinkNanos:      is.LinkNanos,
			ScoreNanos:     is.ScoreNanos,
		}
	})
	st := x.stats
	st.Articles = x.engine.NumDocs()
	st.Generation = x.engine.Generation()
	st.Segments = x.engine.SegmentSizes()
	st.Ingest = IngestCounters(x.engine.IngestCounters())
	st.Persist = PersistCounters(x.engine.PersistCounters())
	cs := x.engine.CacheStats()
	st.EngineCache = EngineCacheStats{
		CDR:   CacheCounters(cs.CDR),
		Match: CacheCounters(cs.Match),
		Conn:  CacheCounters(cs.Conn),
	}
	st.Watch = WatchCounters(x.watch.Counters())
	return st
}

// ResetQueryCaches restores the engine's query-time memoisation to its
// post-build state for the current generation. Benchmarks and stress
// tests use it to replay cold-cache traffic; results are unaffected
// because on-demand values are seeded per (concept, document), and
// queries in flight keep their pinned snapshot. It advances
// QueryEpoch, so layered response caches stop serving retained bodies
// too.
func (x *Explorer) ResetQueryCaches() { x.engine.ResetQueryCaches() }

// CanonicalConcepts returns a canonical form of a concept query:
// names are whitespace-trimmed, empties dropped, duplicates removed,
// and the rest sorted. Two queries naming the same concept set
// canonicalize identically, which is what makes cache keys (QueryKey)
// and cached responses order-insensitive. Already-canonical input is
// returned as-is (the result may alias the input; the input is never
// mutated).
func CanonicalConcepts(concepts []string) []string {
	canonical := true
	for i, c := range concepts {
		if c == "" || c != strings.TrimSpace(c) || (i > 0 && concepts[i-1] >= c) {
			canonical = false
			break
		}
	}
	if canonical {
		return concepts
	}
	out := make([]string, 0, len(concepts))
	seen := make(map[string]bool, len(concepts))
	for _, c := range concepts {
		c = strings.TrimSpace(c)
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// QueryKey builds a canonical cache key for an operation over a
// concept query at result size k. The concept set is canonicalized
// first, so permutations and duplicates of the same query map to the
// same key. Each concept is length-prefixed in the key, so distinct
// queries cannot collide no matter what bytes the names contain.
func QueryKey(op string, concepts []string, k int) string {
	var b strings.Builder
	b.WriteString(op)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	for _, c := range CanonicalConcepts(concepts) {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(c)))
		b.WriteByte(':')
		b.WriteString(c)
	}
	return b.String()
}

// resolveConcepts maps concept names to node IDs, producing typed
// errors: an unknown name yields CodeUnknownConcept with
// nearest-concept suggestions in Details.
func (x *Explorer) resolveConcepts(names []string) (core.Query, error) {
	return resolveConceptsOn(x.g, names)
}

// resolveConceptsOn is resolveConcepts over an explicit graph — shared
// with QueryWorld, so a corpus-less router validates and resolves
// queries with the same typed errors a shard would produce.
func resolveConceptsOn(g *kg.Graph, names []string) (core.Query, error) {
	if len(names) == 0 {
		return nil, newErrorf(CodeInvalidArgument, "ncexplorer: empty concept query")
	}
	q := make(core.Query, 0, len(names))
	for _, name := range names {
		id, ok := g.Lookup(name)
		if !ok {
			return nil, unknownConceptErrorOn(g, name)
		}
		if !g.IsConcept(id) {
			return nil, newErrorf(CodeInvalidArgument,
				"ncexplorer: %q is an entity, not a concept (try ConceptsForEntity)", name)
		}
		q = append(q, id)
	}
	return q, nil
}

// RollUp retrieves the top-k articles matching every named concept
// (Definition 1 of the paper), with explanations. k must be positive;
// k <= 0 returns a CodeInvalidArgument error — one behavior shared by
// the CLI, the server, and the batch path (historically the facade
// silently returned no results for k <= 0).
//
// The concept list is treated as a set (Definition 1's Q): it is
// canonicalized — trimmed, deduplicated, sorted — before execution,
// so duplicates no longer double-count a concept's cdr contribution
// and Explanations arrive in canonical (sorted) concept order. The
// HTTP layer has always canonicalized before calling, so served
// results are unchanged.
func (x *Explorer) RollUp(concepts []string, k int) ([]Article, error) {
	res, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: concepts, K: k, Explain: true})
	if err != nil {
		return nil, err
	}
	return res.Articles, nil
}

// DrillDown suggests the top-k subtopics refining the named concepts
// (Definition 2 of the paper), with score components. Like RollUp it
// rejects k <= 0 with CodeInvalidArgument and canonicalizes the
// concept list into a set before execution.
func (x *Explorer) DrillDown(concepts []string, k int) ([]SubtopicSuggestion, error) {
	res, err := x.DrillDownQuery(context.Background(), DrillDownRequest{Concepts: concepts, K: k, Explain: true})
	if err != nil {
		return nil, err
	}
	return res.Suggestions, nil
}

// ConceptsForEntity lists the concepts an entity can be rolled up to,
// most specific first — the first step of the paper's Fig. 1 workflow
// ("FTX" → "Bitcoin exchange").
func (x *Explorer) ConceptsForEntity(entity string) ([]string, error) {
	id, ok := x.g.Lookup(entity)
	if !ok {
		return nil, newErrorf(CodeUnknownEntity, "ncexplorer: unknown entity %q", entity)
	}
	if !x.g.IsInstance(id) {
		return nil, newErrorf(CodeInvalidArgument, "ncexplorer: %q is a concept, not an entity", entity)
	}
	var out []string
	for _, c := range x.engine.ConceptsForEntity(id) {
		out = append(out, x.g.Name(c))
	}
	return out, nil
}

// BroaderConcepts lists the next roll-up level above a concept.
func (x *Explorer) BroaderConcepts(concept string) ([]string, error) {
	id, ok := x.g.Lookup(concept)
	if !ok || !x.g.IsConcept(id) {
		return nil, x.unknownConceptError(concept)
	}
	var out []string
	for _, c := range x.engine.BroaderOptions(id) {
		out = append(out, x.g.Name(c))
	}
	return out, nil
}

// TopicKeywords amplifies a concept into a retrieval keyword list (the
// most connected entities of its extent).
func (x *Explorer) TopicKeywords(concept string, n int) ([]string, error) {
	id, ok := x.g.Lookup(concept)
	if !ok || !x.g.IsConcept(id) {
		return nil, x.unknownConceptError(concept)
	}
	return x.engine.TopicKeywords(id, n), nil
}

// unknownConceptError builds the typed unknown-concept error with its
// nearest-concept suggestions.
func (x *Explorer) unknownConceptError(concept string) *Error {
	return unknownConceptErrorOn(x.g, concept)
}

// unknownConceptErrorOn is unknownConceptError over an explicit graph.
func unknownConceptErrorOn(g *kg.Graph, concept string) *Error {
	e := newErrorf(CodeUnknownConcept, "ncexplorer: unknown concept %q", concept)
	e.Details = map[string]any{"concept": concept}
	if sugg := suggestConceptsOn(g, concept, maxSuggestions); len(sugg) > 0 {
		e.Details["suggestions"] = sugg
	}
	return e
}

// EvaluationTopics returns the six Table-I topic names with their
// query concepts, for callers reproducing the paper's evaluation.
func (x *Explorer) EvaluationTopics() [][2]string {
	var out [][2]string
	for _, t := range x.meta.Topics {
		out = append(out, [2]string{x.g.Name(t.Concept), x.g.Name(t.GroupConcept)})
	}
	return out
}
