#!/bin/sh
# check_coverage.sh — run the persistence-critical packages with
# -coverprofile and enforce the checked-in per-package floors in
# scripts/coverage_floors.txt (lines: <import-path> <min-percent>).
# The merged profile is written for upload as a CI artifact.
#
# Usage: scripts/check_coverage.sh [coverage.out]
set -e

profile="${1:-coverage.out}"
floors="$(dirname "$0")/coverage_floors.txt"

pkgs="$(awk 'NF >= 2 && $1 !~ /^#/ {printf "%s ", $1}' "$floors")"
if [ -z "$pkgs" ]; then
  echo "no packages listed in $floors" >&2
  exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
# shellcheck disable=SC2086 — the package list is intentionally split.
go test -covermode=atomic -coverprofile="$profile" $pkgs > "$tmp"
cat "$tmp"

fail=0
while read -r pkg floor; do
  case "$pkg" in ""|\#*) continue ;; esac
  pct="$(awk -v pkg="$pkg" '$1 == "ok" && $2 == pkg {
    for (i = 1; i <= NF; i++) if ($i ~ /%$/) { gsub(/%/, "", $i); print $i }
  }' "$tmp" | head -1)"
  if [ -z "$pct" ]; then
    echo "FAIL: no coverage reported for $pkg" >&2
    fail=1
    continue
  fi
  ok="$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')"
  if [ "$ok" = "1" ]; then
    echo "coverage gate: $pkg ${pct}% >= ${floor}% floor"
  else
    echo "FAIL: $pkg coverage ${pct}% below the ${floor}% floor" >&2
    fail=1
  fi
done < "$floors"
exit "$fail"
