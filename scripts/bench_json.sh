#!/bin/sh
# bench_json.sh — run the roll-up/drill-down parallel benchmarks
# (warm + cold), the ingest throughput benchmark, and the snapshot
# open benchmark (warm restart vs from-scratch build), and write a
# machine-readable JSON snapshot, so the perf trajectory accumulates
# one file per PR. Optionally compare the warm roll-up path against a
# baseline snapshot and fail on regression (the CI perf gate).
#
# Usage: scripts/bench_json.sh [output.json] [benchtime] [baseline.json]
#
# With a baseline, the run fails (exit 1) if warm RollUp ns/op
# regresses by more than 25% versus the baseline's value. The run also
# fails if the warm snapshot open is not at least 5x faster than the
# cold from-scratch build (the PR 5 durability acceptance bar), or if
# per-ingest standing-query evaluation grows >25% with corpus size
# (the PR 6 delta-evaluation acceptance bar).
set -e

out="${1:-BENCH_pr6.json}"
benchtime="${2:-20x}"
baseline="${3:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp" "$tmp.body"' EXIT

# No pipe here: piping into tee would mask go test's exit status (POSIX
# sh has no pipefail), letting a half-failed run emit truncated JSON.
go test -run '^$' -bench 'Benchmark((RollUp|DrillDown)Parallel|Ingest)$' \
    -benchtime "$benchtime" ./internal/core > "$tmp"
# Warm-restart and standing-query benchmarks live at the facade level
# (they exercise Save/Open and the ingest-hook evaluation end to end).
# Appended to the same log; the awk below parses every Benchmark line
# it finds.
go test -run '^$' -bench 'BenchmarkOpenSnapshot|BenchmarkWatchEvaluate' \
    -benchtime "$benchtime" . >> "$tmp"
cat "$tmp"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    nsop = ""; nsq = ""; dps = ""; aps = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")    nsop = $i
      if ($(i+1) == "ns/query") nsq  = $i
      if ($(i+1) == "docs/sec") dps  = $i
      if ($(i+1) == "alerts/s") aps  = $i
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, nsop
    if (nsq != "") printf ", \"ns_per_query\": %s", nsq
    if (dps != "") printf ", \"docs_per_sec\": %s", dps
    if (aps != "") printf ", \"alerts_per_sec\": %s", aps
    printf "}"
  }
  END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print ""
  }
' "$tmp" > "$tmp.body"

{
  echo "{"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"benchmarks\": {"
  cat "$tmp.body"
  echo "  }"
  echo "}"
} > "$out"
echo "wrote $out"

extract_nsop() {
  # pull ns_per_op of one benchmark name out of a snapshot
  tr ',' '\n' < "$2" \
    | sed -n 's/.*'"$1"'.*"ns_per_op": *\([0-9][0-9]*\).*/\1/p' \
    | head -1
}

# Durability gate: the whole point of persistence is that a restart is
# much cheaper than a rebuild. Enforce the PR 5 acceptance bar of 5x.
open_warm="$(extract_nsop 'BenchmarkOpenSnapshot\/warm' "$out")"
open_cold="$(extract_nsop 'BenchmarkOpenSnapshot\/cold' "$out")"
if [ -z "$open_warm" ] || [ -z "$open_cold" ]; then
  echo "could not extract OpenSnapshot timings (warm=$open_warm, cold=$open_cold)" >&2
  exit 1
fi
speedup=$((open_cold / open_warm))
echo "open gate: warm $open_warm ns/op vs cold $open_cold ns/op (${speedup}x)"
if [ $((open_warm * 5)) -gt "$open_cold" ]; then
  echo "FAIL: warm snapshot open is not 5x faster than a cold build" >&2
  exit 1
fi

# Standing-query gate: evaluating watchlists against a fixed-size
# delta must cost the same whether the corpus is fresh or has grown
# across segment merges — the delta-only evaluation claim (the PR 6
# acceptance bar of ±25%, checked within this run so it holds on any
# machine).
watch_small="$(extract_nsop 'BenchmarkWatchEvaluate\/growth=0\/watchlists=16' "$out")"
watch_grown="$(extract_nsop 'BenchmarkWatchEvaluate\/growth=8\/watchlists=16' "$out")"
if [ -z "$watch_small" ] || [ -z "$watch_grown" ]; then
  echo "could not extract WatchEvaluate timings (growth=0: $watch_small, growth=8: $watch_grown)" >&2
  exit 1
fi
echo "watch gate: growth=0 $watch_small ns/op vs growth=8 $watch_grown ns/op"
if [ "$watch_grown" -gt $((watch_small * 125 / 100)) ]; then
  echo "FAIL: per-ingest watch evaluation grew >25% with corpus size" >&2
  exit 1
fi

# Perf gate: warm RollUp must stay within 25% of the baseline. The
# warm path is the steady-state serving cost (memo + collector only),
# so it is the number the segmented-index refactor must not tax.
if [ -n "$baseline" ]; then
  if [ ! -f "$baseline" ]; then
    echo "baseline $baseline not found" >&2
    exit 1
  fi
  extract_warm() {
    extract_nsop 'BenchmarkRollUpParallel\/warm' "$1"
  }
  base_warm="$(extract_warm "$baseline")"
  new_warm="$(extract_warm "$out")"
  if [ -z "$base_warm" ] || [ -z "$new_warm" ]; then
    echo "could not extract warm RollUp ns/op (baseline=$base_warm, new=$new_warm)" >&2
    exit 1
  fi
  limit=$((base_warm * 125 / 100))
  echo "perf gate: warm RollUp $new_warm ns/op vs baseline $base_warm ns/op (limit $limit)"
  if [ "$new_warm" -gt "$limit" ]; then
    echo "FAIL: warm RollUp regressed >25% vs $baseline" >&2
    exit 1
  fi
fi
