#!/bin/sh
# bench_json.sh — run the roll-up/drill-down parallel benchmarks
# (warm + cold) and write a machine-readable JSON snapshot, so the
# perf trajectory accumulates one file per PR.
#
# Usage: scripts/bench_json.sh [output.json] [benchtime]
set -e

out="${1:-BENCH_pr3.json}"
benchtime="${2:-20x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp" "$tmp.body"' EXIT

# No pipe here: piping into tee would mask go test's exit status (POSIX
# sh has no pipefail), letting a half-failed run emit truncated JSON.
go test -run '^$' -bench 'Benchmark(RollUp|DrillDown)Parallel' \
    -benchtime "$benchtime" ./internal/core > "$tmp"
cat "$tmp"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    nsop = ""; nsq = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")    nsop = $i
      if ($(i+1) == "ns/query") nsq  = $i
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, nsop
    if (nsq != "") printf ", \"ns_per_query\": %s", nsq
    printf "}"
  }
  END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print ""
  }
' "$tmp" > "$tmp.body"

{
  echo "{"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"benchmarks\": {"
  cat "$tmp.body"
  echo "  }"
  echo "}"
} > "$out"
echo "wrote $out"
