#!/bin/sh
# bench_json.sh — run the roll-up/drill-down parallel benchmarks
# (warm + cold), the ingest throughput benchmark, the snapshot open
# benchmark (warm restart vs from-scratch build), and the cluster tier
# (router fan-out latency, segment shipping throughput, leader ingest
# with checkpointing armed), and write a machine-readable JSON
# snapshot, so the perf trajectory accumulates one file per PR.
# Optionally compare the warm roll-up path against a baseline snapshot
# and fail on regression (the CI perf gate).
#
# Usage: scripts/bench_json.sh [output.json] [benchtime] [baseline.json]
#
# Gates (each failure exits 1):
#   - warm snapshot open at least 5x faster than a cold build (PR 5).
#   - per-ingest standing-query evaluation within 25% across corpus
#     growth (PR 6).
#   - warm RollUp allocates nothing: allocs_per_op must be exactly 0
#     (PR 7 — the pooled scratch claim, machine-independent).
#   - cold RollUp and cold DrillDown at least 5x faster per query than
#     the PR 6 baselines recorded in BENCH_pr6.json (PR 7 — the pruned
#     planner claim). The reference values are hardcoded from that
#     file, so this gate compares machine classes: set
#     BENCH_SKIP_COLD_GATE=1 on hardware much slower than the class
#     that recorded the baselines. The measured margins are ~26x
#     (roll-up) and ~5.8x (drill-down).
#   - leader ingest (checkpointing armed, i.e. every batch also
#     publishes a snapshot for replicas) at least 40% of plain ingest
#     throughput within the same run (PR 8 — the plan-reuse claim:
#     without reusing prior-generation query plans, re-planning every
#     snapshot publish taxed leader ingest to well under half).
#   - with a baseline snapshot, warm RollUp ns/op within 25% of it
#     (same-machine regression gate). A baseline recorded before a
#     metric existed warns and skips that comparison instead of
#     failing, so new tiers never break the merge-base gate on PRs.
set -e

out="${1:-BENCH_pr8.json}"
# Time-based so the pooled warm paths amortise their per-goroutine
# pool misses: with a tiny fixed iteration count (e.g. 20x) the first
# call on every P allocates its scratch and the integer-rounded
# allocs/op reads 1, failing the zero-alloc gate spuriously.
benchtime="${2:-2s}"
baseline="${3:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp" "$tmp.body"' EXIT

# No pipe here: piping into tee would mask go test's exit status (POSIX
# sh has no pipefail), letting a half-failed run emit truncated JSON.
go test -run '^$' -bench 'Benchmark((RollUp|DrillDown)Parallel|Ingest)$' \
    -benchtime "$benchtime" ./internal/core > "$tmp"
# Warm-restart and standing-query benchmarks live at the facade level
# (they exercise Save/Open and the ingest-hook evaluation end to end).
# Appended to the same log; the awk below parses every Benchmark line
# it finds.
go test -run '^$' -bench 'BenchmarkOpenSnapshot|BenchmarkWatchEvaluate' \
    -benchtime "$benchtime" . >> "$tmp"
# Cluster tier: scatter-gather fan-out latency through the router's
# HTTP front (p50/p99), cold-replica segment shipping throughput, and
# leader ingest with checkpointing armed.
go test -run '^$' -bench 'BenchmarkRouterFanout|BenchmarkSegmentShipping|BenchmarkLeaderIngest' \
    -benchtime "$benchtime" ./internal/cluster >> "$tmp"
cat "$tmp"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    nsop = ""; nsq = ""; dps = ""; aps = ""; bpo = ""; apo = ""
    p50 = ""; p99 = ""; shp = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     nsop = $i
      if ($(i+1) == "ns/query")  nsq  = $i
      if ($(i+1) == "docs/sec")  dps  = $i
      if ($(i+1) == "alerts/s")  aps  = $i
      if ($(i+1) == "B/op")      bpo  = $i
      if ($(i+1) == "allocs/op") apo  = $i
      if ($(i+1) == "p50-ns")    p50  = $i
      if ($(i+1) == "p99-ns")    p99  = $i
      if ($(i+1) == "ship-B/s")  shp  = $i
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, nsop
    if (nsq != "") printf ", \"ns_per_query\": %s", nsq
    if (dps != "") printf ", \"docs_per_sec\": %s", dps
    if (aps != "") printf ", \"alerts_per_sec\": %s", aps
    if (bpo != "") printf ", \"bytes_per_op\": %s", bpo
    if (apo != "") printf ", \"allocs_per_op\": %s", apo
    if (p50 != "") printf ", \"p50_ns\": %s", p50
    if (p99 != "") printf ", \"p99_ns\": %s", p99
    if (shp != "") printf ", \"ship_bytes_per_sec\": %s", shp
    printf "}"
  }
  END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print ""
  }
' "$tmp" > "$tmp.body"

{
  echo "{"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"benchmarks\": {"
  cat "$tmp.body"
  echo "  }"
  echo "}"
} > "$out"
echo "wrote $out"

extract_nsop() {
  # pull ns_per_op of one benchmark name out of a snapshot
  tr ',' '\n' < "$2" \
    | sed -n 's/.*'"$1"'.*"ns_per_op": *\([0-9][0-9]*\).*/\1/p' \
    | head -1
}

extract_field() {
  # pull an arbitrary numeric field of one benchmark out of a snapshot
  # (float-safe: ns/query and allocs/op may carry decimals)
  awk -v bench="$1" -v field="$2" '
    index($0, "\"" bench "\"") {
      rest = substr($0, index($0, "\"" bench "\""))
      key = "\"" field "\":"
      p = index(rest, key)
      if (p == 0) next
      v = substr(rest, p + length(key))
      sub(/^[ \t]*/, "", v)
      sub(/[,}].*/, "", v)
      print v
      exit
    }
  ' "$3"
}

# Durability gate: the whole point of persistence is that a restart is
# much cheaper than a rebuild. Enforce the PR 5 acceptance bar of 5x.
open_warm="$(extract_nsop 'BenchmarkOpenSnapshot\/warm' "$out")"
open_cold="$(extract_nsop 'BenchmarkOpenSnapshot\/cold' "$out")"
if [ -z "$open_warm" ] || [ -z "$open_cold" ]; then
  echo "could not extract OpenSnapshot timings (warm=$open_warm, cold=$open_cold)" >&2
  exit 1
fi
speedup=$((open_cold / open_warm))
echo "open gate: warm $open_warm ns/op vs cold $open_cold ns/op (${speedup}x)"
if [ $((open_warm * 5)) -gt "$open_cold" ]; then
  echo "FAIL: warm snapshot open is not 5x faster than a cold build" >&2
  exit 1
fi

# Standing-query gate: evaluating watchlists against a fixed-size
# delta must cost the same whether the corpus is fresh or has grown
# across segment merges — the delta-only evaluation claim (the PR 6
# acceptance bar of ±25%, checked within this run so it holds on any
# machine).
watch_small="$(extract_nsop 'BenchmarkWatchEvaluate\/growth=0\/watchlists=16' "$out")"
watch_grown="$(extract_nsop 'BenchmarkWatchEvaluate\/growth=8\/watchlists=16' "$out")"
if [ -z "$watch_small" ] || [ -z "$watch_grown" ]; then
  echo "could not extract WatchEvaluate timings (growth=0: $watch_small, growth=8: $watch_grown)" >&2
  exit 1
fi
echo "watch gate: growth=0 $watch_small ns/op vs growth=8 $watch_grown ns/op"
if [ "$watch_grown" -gt $((watch_small * 125 / 100)) ]; then
  echo "FAIL: per-ingest watch evaluation grew >25% with corpus size" >&2
  exit 1
fi

# Zero-alloc gate: the warm roll-up path runs entirely on pooled
# scratch, so any allocation is a leak into the steady-state serving
# cost. Machine-independent: allocs/op must be exactly 0.
warm_allocs="$(extract_field 'BenchmarkRollUpParallel/warm' allocs_per_op "$out")"
if [ -z "$warm_allocs" ]; then
  echo "could not extract warm RollUp allocs_per_op" >&2
  exit 1
fi
echo "alloc gate: warm RollUp $warm_allocs allocs/op"
if ! awk -v a="$warm_allocs" 'BEGIN { exit !(a == 0) }'; then
  echo "FAIL: warm RollUp allocates ($warm_allocs allocs/op, want 0)" >&2
  exit 1
fi

# Pruned-planner cold gate: the block-max planner's acceptance bar is
# a 5x per-query speedup of genuinely cold roll-up and drill-down over
# the PR 6 exhaustive scorer. References are the committed
# BENCH_pr6.json values; see the header about machine classes.
if [ -z "$BENCH_SKIP_COLD_GATE" ]; then
  ref_cold_rollup=54574
  ref_cold_drill=62843
  cold_rollup="$(extract_field 'BenchmarkRollUpParallel/cold' ns_per_query "$out")"
  cold_drill="$(extract_field 'BenchmarkDrillDownParallel/cold' ns_per_query "$out")"
  if [ -z "$cold_rollup" ] || [ -z "$cold_drill" ]; then
    echo "could not extract cold ns/query (rollup=$cold_rollup, drilldown=$cold_drill)" >&2
    exit 1
  fi
  echo "cold gate: RollUp $cold_rollup ns/query (ref $ref_cold_rollup), DrillDown $cold_drill ns/query (ref $ref_cold_drill)"
  if ! awk -v new="$cold_rollup" -v ref="$ref_cold_rollup" 'BEGIN { exit !(new * 5 <= ref) }'; then
    echo "FAIL: cold RollUp is not 5x faster than the PR 6 baseline ($cold_rollup * 5 > $ref_cold_rollup)" >&2
    exit 1
  fi
  if ! awk -v new="$cold_drill" -v ref="$ref_cold_drill" 'BEGIN { exit !(new * 5 <= ref) }'; then
    echo "FAIL: cold DrillDown is not 5x faster than the PR 6 baseline ($cold_drill * 5 > $ref_cold_drill)" >&2
    exit 1
  fi
fi

# Leader-ingest gate: a cluster leader publishes a snapshot on every
# committed batch (CheckpointTo armed), which re-plans the query
# posting layout for the new snapshot. With plan reuse (only the new
# segment is planned; prior-generation plans carry over) that publish
# must not tax ingest below 40% of plain (non-checkpointing) ingest
# throughput. Both modes run back-to-back inside the same benchmark,
# so the ratio holds on any machine class.
plain_ingest="$(extract_field 'BenchmarkLeaderIngest/plain' docs_per_sec "$out")"
leader_ingest="$(extract_field 'BenchmarkLeaderIngest/checkpointing' docs_per_sec "$out")"
if [ -z "$plain_ingest" ] || [ -z "$leader_ingest" ]; then
  echo "could not extract ingest throughput (plain=$plain_ingest, checkpointing=$leader_ingest)" >&2
  exit 1
fi
echo "leader-ingest gate: $leader_ingest docs/sec with checkpointing vs $plain_ingest docs/sec plain"
if ! awk -v l="$leader_ingest" -v c="$plain_ingest" 'BEGIN { exit !(l * 10 >= c * 4) }'; then
  echo "FAIL: checkpointing leader ingest is below 40% of plain ingest ($leader_ingest vs $plain_ingest docs/sec)" >&2
  exit 1
fi

# Perf gate: warm RollUp must stay within 25% of the baseline. The
# warm path is the steady-state serving cost (pooled scratch + pruned
# plan scan only), so it is the number no refactor may tax.
#
# A metric missing from the BASELINE is not a failure: older
# BENCH_*.json files predate newer tiers (e.g. the PR 8 cluster
# metrics), and the merge-base gate on PRs must tolerate comparing
# against them — warn and skip that comparison. A metric missing from
# THIS run's snapshot is still fatal: it means the benchmark broke.
if [ -n "$baseline" ]; then
  if [ ! -f "$baseline" ]; then
    echo "baseline $baseline not found" >&2
    exit 1
  fi
  extract_warm() {
    extract_nsop 'BenchmarkRollUpParallel\/warm' "$1"
  }
  base_warm="$(extract_warm "$baseline")"
  new_warm="$(extract_warm "$out")"
  if [ -z "$new_warm" ]; then
    echo "could not extract warm RollUp ns/op from this run" >&2
    exit 1
  fi
  if [ -z "$base_warm" ]; then
    echo "WARN: baseline $baseline has no warm RollUp ns_per_op; skipping perf gate" >&2
  else
    limit=$((base_warm * 125 / 100))
    echo "perf gate: warm RollUp $new_warm ns/op vs baseline $base_warm ns/op (limit $limit)"
    if [ "$new_warm" -gt "$limit" ]; then
      echo "FAIL: warm RollUp regressed >25% vs $baseline" >&2
      exit 1
    fi
  fi
fi
