#!/bin/sh
# bench_json.sh — run the roll-up/drill-down parallel benchmarks
# (warm + cold), the ingest throughput benchmark, the snapshot open
# benchmark (warm restart vs from-scratch build), and the cluster tier
# (router fan-out latency, segment shipping throughput, leader ingest
# with checkpointing armed), and write a machine-readable JSON
# snapshot, so the perf trajectory accumulates one file per PR.
# Optionally compare the warm roll-up path against a baseline snapshot
# and fail on regression (the CI perf gate).
#
# Usage: scripts/bench_json.sh [output.json] [benchtime] [baseline.json]
#
# Gates (each failure exits 1):
#   - warm snapshot open at least 5x faster than a cold build (PR 5).
#   - per-ingest standing-query evaluation within 25% across corpus
#     growth (PR 6).
#   - warm RollUp allocates nothing: allocs_per_op must be exactly 0
#     (PR 7 — the pooled scratch claim, machine-independent).
#   - cold RollUp and cold DrillDown at least 5x faster per query than
#     the PR 6 baselines recorded in BENCH_pr6.json (PR 7 — the pruned
#     planner claim). The reference values are hardcoded from that
#     file, so this gate compares machine classes: set
#     BENCH_SKIP_COLD_GATE=1 on hardware much slower than the class
#     that recorded the baselines. The measured margins are ~26x
#     (roll-up) and ~5.8x (drill-down).
#   - leader ingest (checkpointing armed, i.e. every batch also
#     publishes a snapshot for replicas) at least 70% of plain ingest
#     throughput within the same run (PR 9 — the group-commit claim:
#     checkpoint encode+fsync overlaps the next batch's analysis and
#     consecutive commits coalesce to one manifest write; the PR 8
#     plan-reuse bar was 40%).
#   - ingest throughput at least 1.5x the PR 8 baseline recorded in
#     BENCH_pr8.json (PR 9 — the pipelined-ingest claim; the full
#     measured margin is >2x). Machine-class-relative like the cold
#     gate: BENCH_SKIP_COLD_GATE=1 skips it on slower hardware.
#   - scale tier (BenchmarkScaleIngest, default 5k docs, 100k with
#     BENCH_SCALE_DOCS=100000): sustained ingest under concurrent
#     query load, p99 roll-up latency under that load, and peak RSS
#     proving constant-memory corpus streaming (PR 9).
#   - temporal tier (BenchmarkTimeFilteredRollUp): cold roll-up
#     restricted to the most recent 10% of the publication span must
#     cost at most half the unfiltered per-query cost — the segment-
#     and block-level time-bound pruning claim (PR 10). Within-run
#     ratio, so it holds on any machine class. The grouped variant is
#     recorded but not gated.
#   - with a baseline snapshot, warm RollUp ns/op within 25% of it
#     (same-machine regression gate). A baseline recorded before a
#     metric existed warns and skips that comparison instead of
#     failing, so new tiers never break the merge-base gate on PRs.
set -e

out="${1:-BENCH_pr10.json}"
# Time-based so the pooled warm paths amortise their per-goroutine
# pool misses: with a tiny fixed iteration count (e.g. 20x) the first
# call on every P allocates its scratch and the integer-rounded
# allocs/op reads 1, failing the zero-alloc gate spuriously.
benchtime="${2:-2s}"
baseline="${3:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp" "$tmp.body"' EXIT

# No pipe here: piping into tee would mask go test's exit status (POSIX
# sh has no pipefail), letting a half-failed run emit truncated JSON.
go test -run '^$' -bench 'Benchmark((RollUp|DrillDown)Parallel|Ingest|TimeFilteredRollUp)$' \
    -benchtime "$benchtime" ./internal/core > "$tmp"
# Warm-restart and standing-query benchmarks live at the facade level
# (they exercise Save/Open and the ingest-hook evaluation end to end).
# Appended to the same log; the awk below parses every Benchmark line
# it finds.
go test -run '^$' -bench 'BenchmarkOpenSnapshot|BenchmarkWatchEvaluate' \
    -benchtime "$benchtime" . >> "$tmp"
# Cluster tier: scatter-gather fan-out latency through the router's
# HTTP front (p50/p99), cold-replica segment shipping throughput, and
# leader ingest with checkpointing armed.
go test -run '^$' -bench 'BenchmarkRouterFanout|BenchmarkSegmentShipping|BenchmarkLeaderIngest' \
    -benchtime "$benchtime" ./internal/cluster >> "$tmp"
# Scale tier: one full pipelined ingest run (default 5k documents;
# BENCH_SCALE_DOCS=100000 for the full tier) with concurrent roll-up
# load — always -benchtime 1x, the run IS the measurement.
go test -run '^$' -bench 'BenchmarkScaleIngest$' -benchtime 1x . >> "$tmp"
cat "$tmp"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    nsop = ""; nsq = ""; dps = ""; aps = ""; bpo = ""; apo = ""
    p50 = ""; p99 = ""; shp = ""; qp99 = ""; rss = ""
    pdps = ""; cdps = ""; dpc = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     nsop = $i
      if ($(i+1) == "ns/query")  nsq  = $i
      if ($(i+1) == "docs/sec")  dps  = $i
      if ($(i+1) == "alerts/s")  aps  = $i
      if ($(i+1) == "B/op")      bpo  = $i
      if ($(i+1) == "allocs/op") apo  = $i
      if ($(i+1) == "p50-ns")    p50  = $i
      if ($(i+1) == "p99-ns")    p99  = $i
      if ($(i+1) == "ship-B/s")  shp  = $i
      if ($(i+1) == "q-p99-ns")    qp99 = $i
      if ($(i+1) == "peak-rss-mb") rss  = $i
      if ($(i+1) == "plain-docs/sec") pdps = $i
      if ($(i+1) == "ckpt-docs/sec")  cdps = $i
      if ($(i+1) == "durable-pct")    dpc  = $i
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, nsop
    if (nsq != "") printf ", \"ns_per_query\": %s", nsq
    if (dps != "") printf ", \"docs_per_sec\": %s", dps
    if (aps != "") printf ", \"alerts_per_sec\": %s", aps
    if (bpo != "") printf ", \"bytes_per_op\": %s", bpo
    if (apo != "") printf ", \"allocs_per_op\": %s", apo
    if (p50 != "") printf ", \"p50_ns\": %s", p50
    if (p99 != "") printf ", \"p99_ns\": %s", p99
    if (shp != "") printf ", \"ship_bytes_per_sec\": %s", shp
    if (qp99 != "") printf ", \"query_p99_ns\": %s", qp99
    if (rss != "") printf ", \"peak_rss_mb\": %s", rss
    if (pdps != "") printf ", \"plain_docs_per_sec\": %s", pdps
    if (cdps != "") printf ", \"ckpt_docs_per_sec\": %s", cdps
    if (dpc != "") printf ", \"durable_pct\": %s", dpc
    printf "}"
  }
  END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print ""
  }
' "$tmp" > "$tmp.body"

{
  echo "{"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"benchmarks\": {"
  cat "$tmp.body"
  echo "  }"
  echo "}"
} > "$out"
echo "wrote $out"

extract_nsop() {
  # pull ns_per_op of one benchmark name out of a snapshot
  tr ',' '\n' < "$2" \
    | sed -n 's/.*'"$1"'.*"ns_per_op": *\([0-9][0-9]*\).*/\1/p' \
    | head -1
}

extract_field() {
  # pull an arbitrary numeric field of one benchmark out of a snapshot
  # (float-safe: ns/query and allocs/op may carry decimals)
  awk -v bench="$1" -v field="$2" '
    index($0, "\"" bench "\"") {
      rest = substr($0, index($0, "\"" bench "\""))
      key = "\"" field "\":"
      p = index(rest, key)
      if (p == 0) next
      v = substr(rest, p + length(key))
      sub(/^[ \t]*/, "", v)
      sub(/[,}].*/, "", v)
      print v
      exit
    }
  ' "$3"
}

# Durability gate: the whole point of persistence is that a restart is
# much cheaper than a rebuild. Enforce the PR 5 acceptance bar of 5x.
open_warm="$(extract_nsop 'BenchmarkOpenSnapshot\/warm' "$out")"
open_cold="$(extract_nsop 'BenchmarkOpenSnapshot\/cold' "$out")"
if [ -z "$open_warm" ] || [ -z "$open_cold" ]; then
  echo "could not extract OpenSnapshot timings (warm=$open_warm, cold=$open_cold)" >&2
  exit 1
fi
speedup=$((open_cold / open_warm))
echo "open gate: warm $open_warm ns/op vs cold $open_cold ns/op (${speedup}x)"
if [ $((open_warm * 5)) -gt "$open_cold" ]; then
  echo "FAIL: warm snapshot open is not 5x faster than a cold build" >&2
  exit 1
fi

# Standing-query gate: evaluating watchlists against a fixed-size
# delta must cost the same whether the corpus is fresh or has grown
# across segment merges — the delta-only evaluation claim (the PR 6
# acceptance bar of ±25%, checked within this run so it holds on any
# machine).
watch_small="$(extract_nsop 'BenchmarkWatchEvaluate\/growth=0\/watchlists=16' "$out")"
watch_grown="$(extract_nsop 'BenchmarkWatchEvaluate\/growth=8\/watchlists=16' "$out")"
if [ -z "$watch_small" ] || [ -z "$watch_grown" ]; then
  echo "could not extract WatchEvaluate timings (growth=0: $watch_small, growth=8: $watch_grown)" >&2
  exit 1
fi
echo "watch gate: growth=0 $watch_small ns/op vs growth=8 $watch_grown ns/op"
if [ "$watch_grown" -gt $((watch_small * 125 / 100)) ]; then
  echo "FAIL: per-ingest watch evaluation grew >25% with corpus size" >&2
  exit 1
fi

# Zero-alloc gate: the warm roll-up path runs entirely on pooled
# scratch, so any allocation is a leak into the steady-state serving
# cost. Machine-independent: allocs/op must be exactly 0.
warm_allocs="$(extract_field 'BenchmarkRollUpParallel/warm' allocs_per_op "$out")"
if [ -z "$warm_allocs" ]; then
  echo "could not extract warm RollUp allocs_per_op" >&2
  exit 1
fi
echo "alloc gate: warm RollUp $warm_allocs allocs/op"
if ! awk -v a="$warm_allocs" 'BEGIN { exit !(a == 0) }'; then
  echo "FAIL: warm RollUp allocates ($warm_allocs allocs/op, want 0)" >&2
  exit 1
fi

# Pruned-planner cold gate: the block-max planner's acceptance bar is
# a 5x per-query speedup of genuinely cold roll-up and drill-down over
# the PR 6 exhaustive scorer. References are the committed
# BENCH_pr6.json values; see the header about machine classes.
if [ -z "$BENCH_SKIP_COLD_GATE" ]; then
  ref_cold_rollup=54574
  ref_cold_drill=62843
  cold_rollup="$(extract_field 'BenchmarkRollUpParallel/cold' ns_per_query "$out")"
  cold_drill="$(extract_field 'BenchmarkDrillDownParallel/cold' ns_per_query "$out")"
  if [ -z "$cold_rollup" ] || [ -z "$cold_drill" ]; then
    echo "could not extract cold ns/query (rollup=$cold_rollup, drilldown=$cold_drill)" >&2
    exit 1
  fi
  echo "cold gate: RollUp $cold_rollup ns/query (ref $ref_cold_rollup), DrillDown $cold_drill ns/query (ref $ref_cold_drill)"
  if ! awk -v new="$cold_rollup" -v ref="$ref_cold_rollup" 'BEGIN { exit !(new * 5 <= ref) }'; then
    echo "FAIL: cold RollUp is not 5x faster than the PR 6 baseline ($cold_rollup * 5 > $ref_cold_rollup)" >&2
    exit 1
  fi
  if ! awk -v new="$cold_drill" -v ref="$ref_cold_drill" 'BEGIN { exit !(new * 5 <= ref) }'; then
    echo "FAIL: cold DrillDown is not 5x faster than the PR 6 baseline ($cold_drill * 5 > $ref_cold_drill)" >&2
    exit 1
  fi
fi

# Leader-ingest gate: a cluster leader publishes a snapshot on every
# committed batch (CheckpointTo armed). With the group-commit writer
# the checkpoint encode+fsync overlaps the next batch's analysis and
# consecutive commits coalesce into one manifest write, so durable
# leader throughput (the benchmark drains the writer inside its timed
# region) must reach 70% of plain ingest — up from the 40% the PR 8
# plan-reuse mitigation alone bought. The benchmark PAIRS the two
# modes inside every iteration (alternating order) and reports the
# ratio directly as durable-pct, so the gate compares runs that shared
# the machine's state and holds on any machine class.
plain_ingest="$(extract_field 'BenchmarkLeaderIngest' plain_docs_per_sec "$out")"
leader_ingest="$(extract_field 'BenchmarkLeaderIngest' ckpt_docs_per_sec "$out")"
durable_pct="$(extract_field 'BenchmarkLeaderIngest' durable_pct "$out")"
if [ -z "$durable_pct" ]; then
  echo "could not extract BenchmarkLeaderIngest durable_pct (plain=$plain_ingest, ckpt=$leader_ingest)" >&2
  exit 1
fi
echo "leader-ingest gate: $leader_ingest docs/sec with checkpointing vs $plain_ingest docs/sec plain (${durable_pct}%)"
if ! awk -v p="$durable_pct" 'BEGIN { exit !(p >= 70) }'; then
  echo "FAIL: checkpointing leader ingest is below 70% of paired plain ingest (${durable_pct}%)" >&2
  exit 1
fi

# Pipelined-ingest gate: BenchmarkIngest against the PR 8 baseline
# (BENCH_pr8.json recorded 1632 docs/sec on the reference container).
# The pipeline's acceptance bar is 2x; the gate enforces 1.5x so normal
# machine noise inside the same class never flakes it. Machine-class
# relative — BENCH_SKIP_COLD_GATE=1 skips it, like the cold gate.
if [ -z "$BENCH_SKIP_COLD_GATE" ]; then
  ref_ingest=1632
  ingest_dps="$(extract_field 'BenchmarkIngest' docs_per_sec "$out")"
  if [ -z "$ingest_dps" ]; then
    echo "could not extract BenchmarkIngest docs_per_sec" >&2
    exit 1
  fi
  echo "ingest gate: $ingest_dps docs/sec (ref $ref_ingest, need 1.5x = 2448)"
  if ! awk -v new="$ingest_dps" -v ref="$ref_ingest" 'BEGIN { exit !(new * 2 >= ref * 3) }'; then
    echo "FAIL: pipelined ingest is not 1.5x the PR 8 baseline ($ingest_dps vs $ref_ingest docs/sec)" >&2
    exit 1
  fi
fi

# Scale-tier gates: the sustained run must hold throughput under
# concurrent query load, keep the roll-up tail flat, and stream the
# corpus through generation in constant memory. Reference-container
# measurements: 5k docs ≈ 1250 docs/sec, p99 20µs, 76 MB peak; 100k
# docs ≈ 1000 docs/sec, p99 111µs, 822 MB peak. The RSS cap scales
# with the document count because the INDEX legitimately grows with
# the corpus (~8 KB/doc); the gate catches the failure mode where raw
# documents pile up (generation materialised up front, batches
# retained). Throughput is machine-class relative and honours
# BENCH_SKIP_COLD_GATE.
scale_dps="$(extract_field 'BenchmarkScaleIngest' docs_per_sec "$out")"
scale_p99="$(extract_field 'BenchmarkScaleIngest' query_p99_ns "$out")"
scale_rss="$(extract_field 'BenchmarkScaleIngest' peak_rss_mb "$out")"
if [ -z "$scale_dps" ] || [ -z "$scale_p99" ]; then
  echo "could not extract scale-tier metrics (docs/sec=$scale_dps, p99=$scale_p99)" >&2
  exit 1
fi
echo "scale gate: $scale_dps docs/sec under query load, roll-up p99 ${scale_p99} ns, peak RSS ${scale_rss:-unmeasured} MB"
if [ -z "$BENCH_SKIP_COLD_GATE" ]; then
  if ! awk -v d="$scale_dps" 'BEGIN { exit !(d >= 700) }'; then
    echo "FAIL: scale-tier ingest below 700 docs/sec under query load ($scale_dps)" >&2
    exit 1
  fi
fi
if ! awk -v p="$scale_p99" 'BEGIN { exit !(p <= 5000000) }'; then
  echo "FAIL: scale-tier roll-up p99 above 5ms under ingest load ($scale_p99 ns)" >&2
  exit 1
fi
if [ -n "$scale_rss" ]; then
  scale_docs="${BENCH_SCALE_DOCS:-5000}"
  rss_limit=$((256 + scale_docs * 8 / 1000))
  if ! awk -v r="$scale_rss" -v lim="$rss_limit" 'BEGIN { exit !(r <= lim) }'; then
    echo "FAIL: scale-tier peak RSS above $rss_limit MB for $scale_docs docs ($scale_rss MB)" >&2
    exit 1
  fi
else
  echo "WARN: peak RSS unmeasured (/proc unavailable); skipping RSS gate" >&2
fi

# Temporal-pruning gate: a 10% publication-time window must cut cold
# roll-up per-query cost at least 2x — the whole point of carrying
# exact time bounds per segment and per plan block is that a narrow
# window skips scoring work, not just filters results after the fact.
# Within-run ratio (both variants share the engine and the machine
# state), so the gate holds on any machine class.
tf_full="$(extract_field 'BenchmarkTimeFilteredRollUp/unfiltered' ns_per_query "$out")"
tf_win="$(extract_field 'BenchmarkTimeFilteredRollUp/window10' ns_per_query "$out")"
if [ -z "$tf_full" ] || [ -z "$tf_win" ]; then
  echo "could not extract temporal-tier ns/query (unfiltered=$tf_full, window10=$tf_win)" >&2
  exit 1
fi
echo "temporal gate: window10 $tf_win ns/query vs unfiltered $tf_full ns/query"
if ! awk -v w="$tf_win" -v f="$tf_full" 'BEGIN { exit !(w * 2 <= f) }'; then
  echo "FAIL: 10% time window does not halve cold roll-up cost ($tf_win vs $tf_full ns/query)" >&2
  exit 1
fi

# Perf gate: warm RollUp must stay within 25% of the baseline. The
# warm path is the steady-state serving cost (pooled scratch + pruned
# plan scan only), so it is the number no refactor may tax.
#
# A metric missing from the BASELINE is not a failure: older
# BENCH_*.json files predate newer tiers (e.g. the PR 8 cluster
# metrics), and the merge-base gate on PRs must tolerate comparing
# against them — warn and skip that comparison. A metric missing from
# THIS run's snapshot is still fatal: it means the benchmark broke.
if [ -n "$baseline" ]; then
  if [ ! -f "$baseline" ]; then
    echo "baseline $baseline not found" >&2
    exit 1
  fi
  extract_warm() {
    extract_nsop 'BenchmarkRollUpParallel\/warm' "$1"
  }
  base_warm="$(extract_warm "$baseline")"
  new_warm="$(extract_warm "$out")"
  if [ -z "$new_warm" ]; then
    echo "could not extract warm RollUp ns/op from this run" >&2
    exit 1
  fi
  if [ -z "$base_warm" ]; then
    echo "WARN: baseline $baseline has no warm RollUp ns_per_op; skipping perf gate" >&2
  else
    limit=$((base_warm * 125 / 100))
    echo "perf gate: warm RollUp $new_warm ns/op vs baseline $base_warm ns/op (limit $limit)"
    if [ "$new_warm" -gt "$limit" ]; then
      echo "FAIL: warm RollUp regressed >25% vs $baseline" >&2
      exit 1
    fi
  fi
fi
