// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§IV). Each benchmark runs the corresponding experiment on
// a process-cached default-scale world (built once; its construction
// cost is excluded from the measurements). Run them all with
//
//	go test -bench=. -benchmem
//
// and see cmd/experiments for the same artifacts rendered as the
// paper's tables, plus EXPERIMENTS.md for a measured-vs-paper index.
//
// (External test package: the serving benchmarks import
// internal/server, which itself imports ncexplorer.)
package ncexplorer_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ncexplorer"
	"ncexplorer/internal/baselines"
	"ncexplorer/internal/core"
	"ncexplorer/internal/harness"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/server"
	"ncexplorer/internal/vecstore"
)

func defaultWorld(b *testing.B) *harness.World {
	b.Helper()
	return harness.GetWorld(harness.Default)
}

// BenchmarkDatasetStats regenerates the §IV dataset statistics table
// (E0): articles / total entities / linked entities per source.
func BenchmarkDatasetStats(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := w.DatasetStats()
		if len(rows) != 3 {
			b.Fatal("bad dataset stats")
		}
	}
}

// BenchmarkTableI regenerates Table I (E1): NDCG@{1,5,10} for six
// topics × five methods, with and without the GPT re-rank.
func BenchmarkTableI(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topics := w.TableI()
		if len(topics) != 6 {
			b.Fatal("bad Table I")
		}
	}
}

// BenchmarkTableII regenerates Table II (E2): the mean NDCG impact of
// GPT re-ranking per method.
func BenchmarkTableII(b *testing.B) {
	w := defaultWorld(b)
	topics := w.TableI()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := harness.TableII(topics)
		if len(rows) != 5 {
			b.Fatal("bad Table II")
		}
	}
}

// BenchmarkTableIII regenerates Table III (E3): the simulated analyst
// productivity study with Welch p-values.
func BenchmarkTableIII(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := w.TableIII(10)
		if len(rows) == 0 {
			b.Fatal("bad Table III")
		}
	}
}

// BenchmarkFig4Indexing regenerates Fig. 4 (E4): per-article indexing
// time by source and method, with NCExplorer's link/score breakdown.
func BenchmarkFig4Indexing(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := w.Fig4(100)
		if len(rows) != 3 {
			b.Fatal("bad Fig 4")
		}
	}
}

// BenchmarkFig5Retrieval regenerates Fig. 5 (E5): retrieval latency
// versus the number of query concepts.
func BenchmarkFig5Retrieval(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := w.Fig5(100)
		if len(points) != 3 {
			b.Fatal("bad Fig 5")
		}
	}
}

// BenchmarkFig6ContextRelevance regenerates Fig. 6 (E6): context
// relevance separation between true and negative-sampled concepts.
func BenchmarkFig6ContextRelevance(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := w.Fig6(100)
		if len(rows) == 0 {
			b.Fatal("bad Fig 6")
		}
	}
}

// BenchmarkFig7Sampling regenerates Fig. 7 (E7): random-walk estimator
// convergence with and without the reachability index.
func BenchmarkFig7Sampling(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := w.Fig7(20, 5)
		if len(points) == 0 {
			b.Fatal("bad Fig 7")
		}
	}
}

// BenchmarkFig8Ablation regenerates Fig. 8 (E8): the drill-down
// component ablation (C, C+S, C+S+D).
func BenchmarkFig8Ablation(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := w.Fig8()
		if len(rows) != 3 {
			b.Fatal("bad Fig 8")
		}
	}
}

// BenchmarkReachIndexBuild regenerates the §IV-A2 reachability-index
// construction measurement (E9) at this repository's scale.
func BenchmarkReachIndexBuild(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := w.ReachIndexBuild(500)
		if res.Bytes == 0 {
			b.Fatal("bad reach build")
		}
	}
}

// BenchmarkGPTDirect runs the paper's stated future-work study: GPT as
// a direct ranker over the whole corpus versus retrieve-then-re-rank.
func BenchmarkGPTDirect(b *testing.B) {
	w := defaultWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := w.GPTDirect()
		if len(rows) != 6 {
			b.Fatal("bad GPT-direct study")
		}
	}
}

// ── Operation-level micro benchmarks ────────────────────────────────

// BenchmarkRollUpQuery measures a single warm roll-up query (the
// operation behind Fig. 5's NCExplorer series).
func BenchmarkRollUpQuery(b *testing.B) {
	w := defaultWorld(b)
	topic := w.Meta.Topics[0]
	q := core.Query{topic.Concept, topic.GroupConcept}
	w.Engine.RollUp(q, 10) // warm cdr cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Engine.RollUp(q, 10)
	}
}

// BenchmarkDrillDownQuery measures a single drill-down suggestion
// round.
func BenchmarkDrillDownQuery(b *testing.B) {
	w := defaultWorld(b)
	topic := w.Meta.Topics[0]
	q := core.Query{topic.Concept, topic.GroupConcept}
	w.Engine.DrillDown(q, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Engine.DrillDown(q, 10)
	}
}

// ── Ablation benches for DESIGN.md's design choices ─────────────────

// BenchmarkAblationExactVsSampledConn compares exact path counting
// against the sampled estimator for one concept-document scoring pass —
// the trade the paper's §III-C estimator exists to win.
func BenchmarkAblationExactVsSampledConn(b *testing.B) {
	w := defaultWorld(b)
	exact := relevance.NewScorer(w.G, w.Engine, nil, relevance.Options{Exact: true, MaxExtent: 300})
	sampled := relevance.NewScorer(w.G, w.Engine, nil, relevance.Options{Samples: 50, MaxExtent: 300})
	topic := w.Meta.Topics[0]
	doc := int32(w.Engine.MatchedDocs(core.Query{topic.Concept})[0])
	rnd := w.QueryRand(1)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.Conn(topic.Concept, doc, nil)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sampled.Conn(topic.Concept, doc, rnd)
		}
	})
}

// ── Serving-layer benchmarks (internal/server + internal/qcache) ────

var (
	servingOnce     sync.Once
	servingExplorer *ncexplorer.Explorer
)

// servingWorld builds the tiny-scale Explorer the serving benchmarks
// share; the serving stack's cached-vs-uncached gap, not world scale,
// is what these measure.
func servingWorld(b *testing.B) *ncexplorer.Explorer {
	b.Helper()
	servingOnce.Do(func() {
		x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
		if err != nil {
			panic(err)
		}
		servingExplorer = x
	})
	return servingExplorer
}

// BenchmarkServerRollUp measures one roll-up request through the full
// HTTP serving stack (mux → handler → cache → engine → JSON), cached
// versus uncached — the serving-latency baseline for future PRs.
func BenchmarkServerRollUp(b *testing.B) {
	x := servingWorld(b)
	topics := x.EvaluationTopics()
	body, err := json.Marshal(map[string]any{
		"concepts": []string{topics[0][0], topics[0][1]},
		"k":        10,
	})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, s *server.Server) {
		h := s.Handler()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/rollup", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		run(b, server.New(x, server.Options{CacheCapacity: -1}))
	})
	b.Run("cached", func(b *testing.B) {
		s := server.New(x, server.Options{})
		req := httptest.NewRequest(http.MethodPost, "/v1/rollup", bytes.NewReader(body))
		s.Handler().ServeHTTP(httptest.NewRecorder(), req) // warm the cache
		b.ResetTimer()
		run(b, s)
	})
}

// BenchmarkAblationIVFVsExact compares the vector store's exact scan
// against the IVF index at equal k, the trade Qdrant-class engines make
// (Fig. 5 discussion).
func BenchmarkAblationIVFVsExact(b *testing.B) {
	w := defaultWorld(b)
	bert := baselines.NewBERT()
	if err := bert.Index(w.Corpus); err != nil {
		b.Fatal(err)
	}
	emb := bert.Embedder()
	store := vecstore.New(emb.Dim())
	for i := range w.Corpus.Docs {
		if err := store.Add(int32(i), emb.EmbedText(w.Corpus.Docs[i].Text())); err != nil {
			b.Fatal(err)
		}
	}
	ivf := vecstore.BuildIVF(store, 32, 5, 1)
	q := emb.EmbedText("fraud investigation at the exchange")
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store.Search(q, 10)
		}
	})
	b.Run("ivf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ivf.Search(q, 10, 4)
		}
	})
}
