package ncexplorer

// The scale tier: one benchmark that ingests a large document count
// (default 5 000; BENCH_SCALE_DOCS=100000 for the full tier) through
// the pipelined ingest path while roll-up queries run concurrently,
// and reports the three numbers the serving story is sized by:
//
//   - docs/sec       sustained ingest throughput, durable state included
//                    (the run ends with Quiesce inside the timed region);
//   - q-p99-ns       p99 roll-up latency UNDER ingest load — the reader
//                    tail the snapshot-swap design promises to protect;
//   - peak-rss-mb    process peak RSS (VmHWM), proving the corpus streams
//                    through generation in constant memory instead of
//                    being materialised up front.
//
// scripts/bench_json.sh runs it with -benchtime 1x and gates all three.

import (
	"bufio"
	"context"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ncexplorer/internal/corpus"
)

// peakRSSMB reads the process high-water resident set (VmHWM) in MiB.
// Linux-only; returns 0 where /proc is unavailable, and callers (and
// the bench_json.sh gate) treat 0 as "not measured".
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

func scaleDocs(b *testing.B) int {
	docs := 5000
	if s := os.Getenv("BENCH_SCALE_DOCS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			b.Fatalf("BENCH_SCALE_DOCS=%q: want a positive integer", s)
		}
		docs = n
	}
	return docs
}

func BenchmarkScaleIngest(b *testing.B) {
	docs := scaleDocs(b)
	const batchSize = 1024
	var lat []time.Duration
	totalDocs := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x, err := New(Config{Scale: "tiny", MaxSegments: 32})
		if err != nil {
			b.Fatal(err)
		}
		// The stream generates each batch on demand — the 100k-doc tier
		// never holds more than one batch of raw documents at a time.
		stream, err := corpus.NewStream(x.g, x.meta, x.ccfg, 424242)
		if err != nil {
			b.Fatal(err)
		}
		topics := x.EvaluationTopics()

		// Concurrent query load: two readers roll up evaluation topics
		// for the whole run, recording per-query latency for the p99.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		var latMu sync.Mutex
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func(r int) {
				defer readers.Done()
				for q := r; ; q++ {
					select {
					case <-stop:
						return
					default:
					}
					topic := topics[q%len(topics)]
					start := time.Now()
					if _, err := x.RollUp([]string{topic[0]}, 8); err != nil {
						b.Error(err)
						return
					}
					d := time.Since(start)
					latMu.Lock()
					lat = append(lat, d)
					latMu.Unlock()
				}
			}(r)
		}

		b.StartTimer()
		ingested := 0
		for ingested < docs {
			n := batchSize
			if rest := docs - ingested; rest < n {
				n = rest
			}
			if _, err := x.engine.Ingest(context.Background(), stream.NextBatch(n)); err != nil {
				b.Fatal(err)
			}
			ingested += n
		}
		// Durable throughput: merges and the group-commit writer drain
		// inside the timed region.
		x.Quiesce()
		b.StopTimer()

		close(stop)
		readers.Wait()
		totalDocs += docs
	}
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(totalDocs)/elapsed, "docs/sec")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[int(0.99*float64(len(lat)-1))]), "q-p99-ns")
	}
	if rss := peakRSSMB(); rss > 0 {
		b.ReportMetric(rss, "peak-rss-mb")
	}
}
