package ncexplorer

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ncexplorer/internal/segio"
	"ncexplorer/internal/xrand"
)

// queryFootprint runs a representative paged/filtered workload —
// RollUp pages (first and second page), DrillDown with explanations,
// and TopicKeywords — and marshals every result, so two explorers can
// be compared byte for byte. The request mix is derived from rnd, so
// every property-test iteration exercises different page sizes and
// offsets.
func queryFootprint(t *testing.T, x *Explorer, rnd *xrand.Rand) []byte {
	t.Helper()
	var out []any
	record := func(v any, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	ctx := context.Background()
	for _, pair := range x.EvaluationTopics() {
		k := 3 + int(rnd.Uint64()%6)
		req := RollUpRequest{Concepts: []string{pair[0], pair[1]}, K: k, Explain: true}
		r1, err := x.RollUpQuery(ctx, req)
		record(r1, err)
		req.Offset = k
		record(x.RollUpQuery(ctx, req))
		record(x.RollUpQuery(ctx, RollUpRequest{
			Concepts: []string{pair[0]}, K: k, Sources: []string{"reuters", "nyt"},
		}))
		record(x.DrillDownQuery(ctx, DrillDownRequest{Concepts: []string{pair[0]}, K: k, Explain: true}))
		record(x.TopicKeywords(pair[0], 2+int(rnd.Uint64()%8)))
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// explorersEquivalent compares the full observable query surface of
// two explorers under the same randomized workload.
func explorersEquivalent(t *testing.T, a, b *Explorer, seed uint64, stage string) {
	t.Helper()
	if a.Generation() != b.Generation() || a.NumArticles() != b.NumArticles() {
		t.Fatalf("%s: shape diverges: gen %d/%d docs %d/%d",
			stage, a.Generation(), b.Generation(), a.NumArticles(), b.NumArticles())
	}
	fa := queryFootprint(t, a, xrand.New(seed))
	fb := queryFootprint(t, b, xrand.New(seed))
	if string(fa) != string(fb) {
		t.Fatalf("%s: query results diverge", stage)
	}
}

// TestSaveLoadPropertyEquivalence is the ISSUE's property test: for
// randomized corpora and ingest schedules, an engine reloaded from
// disk answers every query byte-identically to the never-persisted
// engine — at the generation that was saved, and at every generation
// reached afterwards by further ingests and merges. Runs under -race
// in CI.
func TestSaveLoadPropertyEquivalence(t *testing.T) {
	seeds := []uint64{42, 1337}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			rnd := xrand.New(seed * 977)
			// MaxSegments 2 keeps merges in play throughout.
			live, err := New(Config{Scale: "tiny", Seed: seed, MaxSegments: 2})
			if err != nil {
				t.Fatal(err)
			}

			// Random pre-save growth: 1–3 batches of 1–12 articles.
			ingestInto := func(xs []*Explorer, batchSeed uint64, n int) {
				t.Helper()
				arts, err := live.SampleArticles(batchSeed, n)
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range xs {
					if _, err := x.Ingest(context.Background(), arts); err != nil {
						t.Fatal(err)
					}
					x.Quiesce()
				}
			}
			for i := uint64(0); i < 1+rnd.Uint64()%3; i++ {
				ingestInto([]*Explorer{live}, seed*100+i, 1+int(rnd.Uint64()%12))
			}

			dir := t.TempDir()
			if err := live.Save(dir); err != nil {
				t.Fatal(err)
			}
			if !HasSnapshot(dir) {
				t.Fatal("HasSnapshot is false after Save")
			}
			loaded, err := Open(dir, OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			explorersEquivalent(t, live, loaded, seed^1, "after load")

			// Post-load growth: the same random batches into both; every
			// generation must stay equivalent (merges included — the tight
			// MaxSegments keeps folding segments).
			for i := uint64(0); i < 2+rnd.Uint64()%2; i++ {
				ingestInto([]*Explorer{live, loaded}, seed*200+i, 1+int(rnd.Uint64()%10))
				explorersEquivalent(t, live, loaded, seed^(2+i), "after post-load ingest")
			}

			// Second persistence generation: save the loaded engine, open
			// again, compare once more.
			dir2 := t.TempDir()
			if err := loaded.Save(dir2); err != nil {
				t.Fatal(err)
			}
			reopened, err := Open(dir2, OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			explorersEquivalent(t, loaded, reopened, seed^99, "after second reload")

			// Persistence counters surface through Stats for /statsz.
			st := loaded.Stats()
			if st.Persist.Saves != 1 || st.Persist.Opens != 1 {
				t.Fatalf("persist stats = %+v", st.Persist)
			}
		})
	}
}

// TestOpenErrorMapping pins the facade's typed persistence errors:
// CodeNotFound for an empty directory, CodeCorruptSnapshot /
// CodeVersionMismatch for damaged stores — and never a partial
// Explorer alongside any of them.
func TestOpenErrorMapping(t *testing.T) {
	x := getExplorer(t)
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}

	expectCode := func(t *testing.T, dir string, want ErrorCode) {
		t.Helper()
		loaded, err := Open(dir, OpenOptions{})
		if loaded != nil {
			t.Fatal("error path returned a non-nil Explorer")
		}
		e, ok := AsError(err)
		if !ok || e.Code != want {
			t.Fatalf("err = %v (code %v), want code %v", err, e.Code, want)
		}
	}

	t.Run("no snapshot", func(t *testing.T) {
		if HasSnapshot(t.TempDir()) {
			t.Fatal("HasSnapshot true for empty dir")
		}
		expectCode(t, t.TempDir(), CodeNotFound)
	})
	t.Run("manifest not json", func(t *testing.T) {
		d := corruptedCopy(t, dir, func(d string) {
			if err := os.WriteFile(filepath.Join(d, segio.ManifestName), []byte("not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		})
		expectCode(t, d, CodeCorruptSnapshot)
	})
	t.Run("future manifest version", func(t *testing.T) {
		d := corruptedCopy(t, dir, func(d string) {
			rewriteManifestJSON(t, d, func(m map[string]any) { m["format_version"] = 99 })
		})
		expectCode(t, d, CodeVersionMismatch)
	})
	t.Run("flipped byte in segment file", func(t *testing.T) {
		d := corruptedCopy(t, dir, func(d string) {
			m, err := segio.ReadManifest(d)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(d, m.Segments[0].File)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		expectCode(t, d, CodeCorruptSnapshot)
	})
	t.Run("missing segment file", func(t *testing.T) {
		d := corruptedCopy(t, dir, func(d string) {
			m, err := segio.ReadManifest(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(filepath.Join(d, m.Segments[0].File)); err != nil {
				t.Fatal(err)
			}
		})
		expectCode(t, d, CodeCorruptSnapshot)
	})
	t.Run("hostile conn_entries count", func(t *testing.T) {
		// conn_entries is informational; negative or absurd values must
		// neither panic (makeslice) nor balloon allocations — the real
		// entry count comes from the validated file.
		for _, count := range []any{-7, int64(1) << 60} {
			d := corruptedCopy(t, dir, func(d string) {
				rewriteManifestJSON(t, d, func(m map[string]any) { m["conn_entries"] = count })
			})
			loaded, err := Open(d, OpenOptions{})
			if err != nil || loaded == nil {
				t.Fatalf("conn_entries=%v: open failed: %v", count, err)
			}
		}
	})
	t.Run("unknown world scale", func(t *testing.T) {
		d := corruptedCopy(t, dir, func(d string) {
			rewriteManifestJSON(t, d, func(m map[string]any) {
				m["world"] = map[string]any{"scale": "galactic"}
			})
		})
		expectCode(t, d, CodeCorruptSnapshot)
	})
}

// corruptedCopy clones a saved snapshot directory and applies damage.
func corruptedCopy(t *testing.T, src string, damage func(dir string)) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	damage(dst)
	return dst
}

// rewriteManifestJSON round-trips the manifest through a generic map
// so tests can damage individual fields.
func rewriteManifestJSON(t *testing.T, dir string, mutate func(map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, segio.ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSaveOpenPreservesStats: a warm-started explorer reports the same
// world dimensions and build stats as the one that saved (the /statsz
// continuity a restarted deployment expects).
func TestSaveOpenPreservesStats(t *testing.T) {
	x := getExplorer(t)
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := x.Stats(), y.Stats()
	// Persistence and cache counters legitimately differ; blank them
	// and compare everything else.
	a.Persist, b.Persist = PersistCounters{}, PersistCounters{}
	a.EngineCache, b.EngineCache = EngineCacheStats{}, EngineCacheStats{}
	a.Ingest, b.Ingest = IngestCounters{}, IngestCounters{}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stats diverge:\n saved:  %+v\n loaded: %+v", a, b)
	}
	if got := y.Stats().Persist.Opens; got != 1 {
		t.Fatalf("loaded explorer Opens = %d", got)
	}
}

// TestSaveToFileAsDirFails: a data path that cannot hold a directory
// yields an error (and, with no previous manifest, HasSnapshot stays
// false) — the facade half of the ncserver shutdown contract.
func TestSaveToFileAsDirFails(t *testing.T) {
	x := getExplorer(t)
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(file, "store")
	if err := x.Save(target); err == nil {
		t.Fatal("Save into a file-as-dir path succeeded")
	} else if strings.TrimSpace(err.Error()) == "" {
		t.Fatal("empty error message")
	}
	if HasSnapshot(target) {
		t.Fatal("HasSnapshot true after failed save")
	}
}
